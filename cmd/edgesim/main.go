// Command edgesim runs one simulated edge-vs-cloud comparison from
// command-line flags, printing mean/median/p95/p99 latencies, per-site
// utilizations, and the inversion verdict. It is the general-purpose
// front end to the simulator; cmd/figures wraps the same machinery in
// the paper's specific configurations.
//
// Example (the paper's Figure 3 point at 9 req/s):
//
//	edgesim -sites 5 -servers 1 -rate 9 -scenario typical-25ms -duration 600
//
// With -topology the run replays the workload through an arbitrary
// deployment graph instead of the fixed edge/cloud pair, printing
// per-tier latency, spill and drop metrics. The flag accepts a preset
// name, @file.json, or an inline JSON topology spec:
//
//	edgesim -topology edge-regional-cloud -rate 11
//	edgesim -topology @three-tier.json -rate 11
//	edgesim -topology '{"tiers":[{"name":"edge","sites":5,"servers":1,"rttMs":1}]}'
//
// Topology replays parallelize across sharded engines when the graph
// permits (-shards, one engine per CPU by default, bit-identical output
// for every shard count), and can consume recorded workload files
// instead of the generator:
//
//	edgesim -topology edge-regional-cloud -shards 4 -rate 11
//	edgesim -topology edge-regional-cloud -shards 4 -pipeline -rate 11
//	edgesim -topology edge-regional-cloud -trace requests.csv
//	edgesim -topology edge-regional-cloud -azure counts.csv -sweep 6,9,12
//
// -pipeline streams boundary records from the sharded engines into the
// shared phase through watermarked bounded rings, overlapping the two
// phases with bit-identical output; -v explains the engine selection
// (in particular why -shards auto fell back to the single engine).
//
// -grid runs the crossover surface instead: every budget × depth
// deployment shape plus a pooled-cloud baseline replays each swept
// rate from ONE broadcast generation pass per distinct trace,
// answering "which hierarchy depth delays inversion longest?":
//
//	edgesim -grid 6,12,18,24 -grid-budgets 10,15 -grid-depths 1,2,3
//
// -cpuprofile / -memprofile write pprof profiles of the run; replay
// phases carry pprof labels (generate, phase-1, merge, phase-2) so
// `go tool pprof -tagfocus phase=merge` isolates one pipeline stage.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"repro/internal/admit"
	"repro/internal/app"
	"repro/internal/asciiplot"
	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/econ"
	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/lb"
	"repro/internal/netem"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fail prints the error followed by the flag usage and exits with
// status 2, so bad flag values surface immediately instead of
// panicking deep inside a run.
func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "edgesim: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr)
	flag.Usage()
	os.Exit(2)
}

// scenarioNames lists the -scenario presets for usage messages.
func scenarioNames() []string {
	var names []string
	for _, sc := range netem.PaperScenarios() {
		names = append(names, sc.Name)
	}
	return names
}

func main() {
	sites := flag.Int("sites", 5, "number of edge sites")
	servers := flag.Int("servers", 1, "servers per edge site")
	rate := flag.Float64("rate", 8, "request rate per server (req/s)")
	scenario := flag.String("scenario", "typical-25ms", "netem scenario: nearby-13ms|typical-25ms|distant-54ms|transcontinental-80ms")
	duration := flag.Float64("duration", 600, "simulated seconds")
	warmup := flag.Float64("warmup", 60, "warmup seconds discarded from metrics")
	seed := flag.Int64("seed", 1, "random seed")
	arrivalSCV := flag.Float64("arrival-scv", cluster.DefaultArrivalSCV, "squared CoV of inter-arrival times")
	serviceSCV := flag.Float64("service-scv", app.DefaultServiceSCV, "squared CoV of service times")
	policy := flag.String("policy", "central-queue", "cloud dispatch: central-queue|round-robin|least-connections|power-of-two|random")
	slowdown := flag.Float64("edge-slowdown", 1, "edge service-time slowdown factor (resource-constrained edge)")
	jockey := flag.Int("jockey", 0, "geographic LB: redirect when home-site load >= this (0=off)")
	detour := flag.Float64("detour-ms", 5, "extra RTT for jockeyed requests (ms)")
	skew := flag.String("skew", "", "comma-separated per-site weights (e.g. 5,2,1,1,1)")
	queueCap := flag.Int("queue-cap", 0, "bound each queue at this many waiting requests (0=unbounded)")
	summary := flag.String("summary", "exact", "latency summary memory model: exact (retain every sample) | bounded (O(1) streaming moments + P2 quantiles, for huge replays)")
	autoscaleMax := flag.Int("autoscale-max", 0, "also run an autoscaled edge growing each site up to this many servers (0=off)")
	overflowAt := flag.Int("overflow-at", 0, "also run a hierarchical edge overflowing to the cloud at this site load (0=off)")
	topology := flag.String("topology", "", "replay through a deployment graph instead: preset name ("+
		strings.Join(cluster.TopologyPresets(), "|")+"), @file.json, or inline JSON spec")
	scaler := flag.String("scaler", "", "attach a capacity scaler to the edge (entry) tier: "+
		"reactive | predictive[:forecaster] (forecasters: "+strings.Join(forecast.Names(), "|")+"); "+
		"bounds are servers..4x servers, or -autoscale-max when set")
	admitFlag := flag.String("admit", "", "with -topology: attach an admission policy to the entry tier: "+
		"token-bucket:rate=R[,burst=B] | queue-length:threshold=N | priority:threshold=N[,cutoff=C] "+
		"(spec files set per-tier \"admission\" blocks directly)")
	rejectPenalty := flag.Float64("reject-penalty", 0, "with -topology: dollars charged per admission-rejected "+
		"request in the cost overlay (0 = rejections are free)")
	sweep := flag.String("sweep", "", "with -topology: comma-separated req/s-per-server rates to sweep, "+
		"printing per-tier metrics and the inversion crossover vs an equal-capacity pooled cloud")
	stream := flag.Bool("stream", false, "with -topology: generate the workload on the fly instead of "+
		"materializing the trace — memory independent of request count; pair with -summary bounded for huge runs")
	shards := flag.Int("shards", 0, "with -topology: parallel replay engines. Unset: one per CPU when the "+
		"graph shards, the classic single engine otherwise. An explicit count forces that many sharded engines "+
		"(bit-identical output for every count) and fails when the graph cannot shard; explicit 0 forces the "+
		"classic single engine")
	traceFile := flag.String("trace", "", "with -topology: replay a request CSV (time,site,service) or a "+
		"compiled .etb binary trace (auto-detected by signature) instead of generating a workload; "+
		"with -sweep, arrival times rescale so the trace hits each swept rate")
	azureFile := flag.String("azure", "", "with -topology: replay an Azure-style per-bin count CSV "+
		"(bin,site0,site1,...) instead of generating a workload; with -sweep, rescaled like -trace")
	azureBin := flag.Float64("azure-bin", 60, "with -azure: seconds covered by each CSV bin row")
	pipeline := flag.Bool("pipeline", false, "with -topology and sharded engines: overlap the shard and shared "+
		"phases by streaming boundary records through watermarked bounded rings — bit-identical output, boundary "+
		"memory bounded by ring capacity instead of boundary count")
	genWorkers := flag.String("gen-workers", "serial", "parallel workers for synthetic workload generation: "+
		"serial, auto (one per CPU), or an explicit count — every setting produces the bit-identical record "+
		"sequence, so this only changes generation throughput")
	compileOut := flag.String("compile", "", "convert the -trace/-azure input to this file and exit: a .csv "+
		"extension writes the request CSV format, anything else the .etb binary trace format; replay the "+
		"output later with -trace (the format is auto-detected)")
	verbose := flag.Bool("v", false, "explain engine selection on stderr (e.g. why -shards auto fell back to the "+
		"classic single engine, or how -gen-workers auto resolved)")
	grid := flag.String("grid", "", "run a crossover grid over these per-site req/s rates (comma-separated): "+
		"every -grid-budgets x -grid-depths deployment shape plus a pooled-cloud baseline replays each rate "+
		"from one broadcast generation pass per distinct trace")
	gridBudgets := flag.String("grid-budgets", "10,15", "with -grid: comma-separated total server budgets per shape")
	gridDepths := flag.String("grid-depths", "1,2,3", "with -grid: comma-separated hierarchy depths "+
		"(1=pure edge, 2=edge+cloud overflow, 3=edge+regional+cloud chain)")
	gridReps := flag.Int("grid-reps", 1, "with -grid: independent trace replications averaged per cell")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file; replay phases carry pprof "+
		"labels (generate, phase-1, merge, phase-2) for go tool pprof -tagfocus")
	memprofile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	flag.Parse()
	shardsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsSet = true
		}
	})
	sh := shardChoice{set: shardsSet, n: *shards, verbose: *verbose}
	gc := genChoice{arg: *genWorkers, verbose: *verbose}
	in := workloadInput{tracePath: *traceFile, azurePath: *azureFile, azureBin: *azureBin, seed: *seed}

	sc, ok := netem.ScenarioByName(*scenario)
	if !ok {
		fail("unknown -scenario %q (want one of %v)", *scenario, scenarioNames())
	}
	var mode stats.Mode
	switch *summary {
	case "exact":
		mode = stats.Exact
	case "bounded":
		mode = stats.Bounded
	default:
		fail("unknown -summary %q (want exact|bounded)", *summary)
	}
	if *policy != string(cluster.CentralQueue) && !lb.Known(*policy) {
		fail("unknown -policy %q (want %s or one of %v)",
			*policy, cluster.CentralQueue, lb.Policies())
	}
	model := app.NewInferenceModelWith(1/app.SaturationRate, *serviceSCV)

	if *stream && *topology == "" {
		fail("-stream requires -topology (the classic paired edge/cloud mode materializes its trace; " +
			"replay a streamed workload through EdgeTopology/CloudTopology graphs instead)")
	}
	if *shards < 0 {
		fail("-shards must be >= 0 (got %d)", *shards)
	}
	if shardsSet && *topology == "" {
		fail("-shards requires -topology (the classic paired mode runs one engine per deployment)")
	}
	if *pipeline && *topology == "" {
		fail("-pipeline requires -topology (it selects the pipelined sharded replay backend)")
	}
	if *admitFlag != "" && *topology == "" {
		fail("-admit requires -topology (admission policies attach to the entry tier of a deployment graph)")
	}
	if *rejectPenalty != 0 && *topology == "" {
		fail("-reject-penalty requires -topology (the cost overlay prices rejections on graph replays)")
	}
	if *rejectPenalty != 0 && *sweep != "" {
		fail("-reject-penalty cannot combine with -sweep (sweep points price capacity with default rates)")
	}
	if *pipeline && *sweep != "" {
		fail("-pipeline cannot combine with -sweep (sweep points replay through the barrier backend)")
	}
	if *pipeline && shardsSet && *shards == 0 {
		fail("-pipeline needs sharded engines; -shards 0 forces the classic single engine")
	}
	if *traceFile != "" && *azureFile != "" {
		fail("-trace and -azure are mutually exclusive (one workload file per run)")
	}
	if in.active() && *topology == "" && *compileOut == "" {
		fail("%s requires -topology (workload files replay through deployment graphs) or -compile", in.flagName())
	}
	if in.active() && *stream {
		fail("-stream is redundant with %s: the file decoders already stream row by row", in.flagName())
	}
	if *azureBin <= 0 {
		fail("-azure-bin must be positive (got %v)", *azureBin)
	}
	if _, err := (genChoice{arg: gc.arg}).resolve(1 << 20); err != nil {
		// Validate the flag's syntax up front, silently (the huge site
		// count avoids clamping chatter); the real, narrated resolution
		// happens at each generation site with its actual site count.
		fail("%v", err)
	}
	if gc.arg != "serial" && in.active() {
		fail("-gen-workers applies to synthetic generation; %s replays a recorded file", in.flagName())
	}
	if *compileOut != "" {
		if !in.active() {
			fail("-compile needs a -trace or -azure input to convert")
		}
		for flagName, set := range map[string]bool{
			"-topology": *topology != "", "-sweep": *sweep != "", "-grid": *grid != "",
			"-stream": *stream, "-pipeline": *pipeline, "-shards": shardsSet,
		} {
			if set {
				fail("-compile only converts the input file; drop %s", flagName)
			}
		}
		runCompile(in, *compileOut)
		return
	}
	if *stream && mode == stats.Exact {
		// Legitimate at modest scales (exact quantiles without the
		// trace), but at the request counts -stream exists for, exact
		// summaries retain every latency sample and grow O(n) anyway.
		fmt.Fprintln(os.Stderr, "edgesim: warning: -stream with -summary exact retains every latency sample; "+
			"use -summary bounded for O(1)-memory runs")
	}
	if *grid != "" {
		for flagName, set := range map[string]bool{
			"-topology": *topology != "", "-sweep": *sweep != "",
			"-trace": *traceFile != "", "-azure": *azureFile != "",
			"-stream": *stream, "-pipeline": *pipeline, "-shards": shardsSet,
		} {
			if set {
				fail("-grid builds its own deployment shapes and sources; drop %s", flagName)
			}
		}
		if *gridReps < 1 {
			fail("-grid-reps must be >= 1 (got %d)", *gridReps)
		}
	}

	// Profiles cover every run mode below. The deferred writers fire on
	// main's normal return; fail() exits before any replay starts.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	if *grid != "" {
		rates, err := parseRates(*grid)
		if err != nil {
			fail("-grid: %v", err)
		}
		budgets, err := parseInts(*gridBudgets)
		if err != nil {
			fail("-grid-budgets: %v", err)
		}
		depths, err := parseInts(*gridDepths)
		if err != nil {
			fail("-grid-depths: %v", err)
		}
		runGridCLI(rates, budgets, depths, *gridReps, *sites, gc,
			*duration, *warmup, *arrivalSCV, *seed, model, mode)
		return
	}

	if *sweep != "" {
		if *topology == "" {
			fail("-sweep requires -topology (the deployment graph to sweep)")
		}
		runTopologySweepCLI(*topology, *sweep, *scaler, *admitFlag, *autoscaleMax, *stream, in, sh, gc, sc,
			*duration, *warmup, *arrivalSCV, *seed, model, mode)
		return
	}
	if *topology != "" {
		runTopology(*topology, *scaler, *admitFlag, *autoscaleMax, *stream, *pipeline, in, sh, gc, *sites, *servers, *rate,
			*duration, *warmup, *arrivalSCV, *seed, *rejectPenalty, model, mode)
		return
	}

	// Validate -scaler before the expensive paired replay so a typo'd
	// policy fails in milliseconds, not after the runs.
	var scalerSpec *autoscale.Spec
	if *scaler != "" {
		s, err := parseScalerSpec(*scaler, *servers, *autoscaleMax, model.Mu())
		if err != nil {
			fail("-scaler: %v", err)
		}
		scalerSpec = &s
	}

	spec := cluster.GenSpec{
		Sites:       *sites,
		Duration:    *duration,
		PerSiteRate: *rate * float64(*servers),
		ArrivalSCV:  *arrivalSCV,
		Model:       model,
		Seed:        *seed,
	}
	if *skew != "" {
		weights, err := parseWeights(*skew, *sites)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgesim:", err)
			os.Exit(1)
		}
		totalRate := *rate * float64(*servers) * float64(*sites)
		part := workload.NewStatic(weights)
		procs := make([]workload.ArrivalProcess, *sites)
		for i, w := range part.W {
			procs[i] = workload.NewRenewal(dist.FitSCV(1/(totalRate*w), *arrivalSCV))
		}
		spec.Arrivals = procs
	}
	gw, err := gc.resolve(spec.Sites)
	if err != nil {
		fail("%v", err)
	}
	tr := generate(spec, gw)

	// The edge and cloud replays share the trace but nothing else; run
	// them concurrently through the paired runner.
	edge, cloud := cluster.RunPaired(tr, cluster.EdgeConfig{
		Sites:           *sites,
		ServersPerSite:  *servers,
		Path:            sc.Edge,
		Warmup:          *warmup,
		Seed:            *seed + 1,
		SlowdownFactor:  *slowdown,
		JockeyThreshold: *jockey,
		DetourRTT:       *detour / 1000,
		QueueCap:        *queueCap,
		Summary:         mode,
	}, cluster.CloudConfig{
		Servers: *sites * *servers,
		Path:    sc.Cloud,
		Policy:  cluster.DispatchPolicy(*policy),
		Warmup:  *warmup,
		Seed:    *seed + 2,
		Summary: mode,
	})

	fmt.Printf("scenario %s: edge RTT %.1fms, cloud RTT %.1fms, Δn %.1fms\n",
		sc.Name, sc.Edge.MeanRTT()*1000, sc.Cloud.MeanRTT()*1000, sc.DeltaN()*1000)
	fmt.Printf("workload: %d requests over %.0fs (%.1f req/s aggregate), mean service %.1fms\n\n",
		tr.Len(), tr.Duration(), tr.TotalRate(), tr.MeanServiceTime()*1000)

	rows := [][]interface{}{
		latencyRow("edge", edge),
		latencyRow("cloud", cloud),
	}
	// With -scaler set, -autoscale-max only supplies the scaler's upper
	// bound; the legacy edge+autoscale row would duplicate the scaled
	// row under different hardcoded parameters.
	if *autoscaleMax > 0 && *scaler == "" {
		scaled := cluster.RunEdgeAutoscaled(tr, cluster.EdgeConfig{
			Sites: *sites, ServersPerSite: *servers, Path: sc.Edge,
			Warmup: *warmup, Seed: *seed + 1, Summary: mode,
		}, autoscale.Config{
			Interval: 2, Min: *servers, Max: *autoscaleMax,
			UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 6,
		})
		rows = append(rows, latencyRow("edge+autoscale", &scaled.Result))
		defer fmt.Printf("autoscaler: %d scale-ups, %d scale-downs, peak %d servers/site\n",
			scaled.ScaleUps, scaled.ScaleDowns, scaled.PeakServers)
	}
	if *overflowAt > 0 {
		over := cluster.RunEdgeWithOverflow(tr, cluster.OverflowConfig{
			Sites: *sites, ServersPerSite: *servers,
			EdgePath: sc.Edge, CloudPath: sc.Cloud,
			CloudServers: *sites * *servers, OverflowThreshold: *overflowAt,
			Warmup: *warmup, Seed: *seed + 1, Summary: mode,
		})
		rows = append(rows, latencyRow("edge+overflow", &over.Result))
		defer fmt.Printf("overflow: %d requests (%.1f%%) served by the cloud backstop\n",
			over.Overflowed, 100*float64(over.Overflowed)/float64(tr.Len()))
	}
	if scalerSpec != nil {
		// Carry every edge-shaping flag the baseline row uses, so the
		// scaled row differs from "edge" by the controller alone.
		topo := cluster.EdgeTopology(cluster.EdgeConfig{
			Sites: *sites, ServersPerSite: *servers, Path: sc.Edge, Summary: mode,
			SlowdownFactor: *slowdown, QueueCap: *queueCap,
			JockeyThreshold: *jockey, DetourRTT: *detour / 1000,
		})
		topo.Name = "edge+" + scalerSpec.Label()
		topo.Tiers[0].Scaler = scalerSpec
		scaled, err := cluster.Run(tr.Source(), topo, cluster.Options{
			Warmup: *warmup, Seed: *seed + 1, Summary: mode,
			SizeHint: tr.Len(), NoPerSiteLatency: true,
		})
		if err != nil {
			fail("-scaler: %v", err)
		}
		rows = append(rows, latencyRow(topo.Name, &scaled.Result))
		tier := scaled.Tiers[0]
		defer fmt.Printf("scaler[%s]: %d ups, %d downs, peak %d servers, %.0f server-sec, $%.4f total (%.4f $/kreq)\n",
			tier.ScalerPolicy, tier.ScaleUps, tier.ScaleDowns, tier.PeakServers,
			tier.ServerSeconds, tier.Cost, tier.CostPerReq*1000)
	}
	asciiplot.Table(os.Stdout, []string{"deployment", "util", "mean (ms)", "median", "p95", "p99", "max", "n"}, rows)
	if edge.Dropped > 0 {
		fmt.Printf("bounded queues dropped %d requests\n", edge.Dropped)
	}

	fmt.Println()
	var siteRows [][]interface{}
	for _, s := range edge.Sites {
		siteRows = append(siteRows, []interface{}{
			fmt.Sprintf("edge-%d", s.Site), s.MeanRate,
			s.Utilization, s.EndToEnd.Mean() * 1000, s.EndToEnd.P95() * 1000, s.EndToEnd.N(),
		})
	}
	asciiplot.Table(os.Stdout, []string{"site", "req/s", "util", "mean (ms)", "p95 (ms)", "n"}, siteRows)
	if edge.Redirected > 0 {
		fmt.Printf("geographic LB redirected %d requests\n", edge.Redirected)
	}

	fmt.Println()
	switch {
	case edge.MeanLatency() > cloud.MeanLatency() && edge.P95Latency() > cloud.P95Latency():
		fmt.Println("verdict: PERFORMANCE INVERSION — the cloud wins on both mean and p95.")
	case edge.MeanLatency() > cloud.MeanLatency():
		fmt.Println("verdict: mean-latency inversion (cloud wins on mean; edge wins on p95).")
	case edge.P95Latency() > cloud.P95Latency():
		fmt.Println("verdict: tail inversion — edge wins on mean but the cloud wins on p95.")
	default:
		fmt.Println("verdict: the edge wins on both mean and p95.")
	}
}

// loadTopology resolves the -topology flag: a shipped preset name, an
// @file reference, or an inline JSON spec.
func loadTopology(arg string) (cluster.Topology, error) {
	if topo, ok := cluster.PresetTopology(arg); ok {
		return topo, nil
	}
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(strings.TrimPrefix(arg, "@"))
		if err != nil {
			return cluster.Topology{}, err
		}
		return cluster.ParseTopology(data)
	}
	if strings.HasPrefix(strings.TrimSpace(arg), "{") {
		return cluster.ParseTopology([]byte(arg))
	}
	return cluster.Topology{}, fmt.Errorf("not a preset (%v), @file, or inline JSON: %q",
		cluster.TopologyPresets(), arg)
}

// parseScalerSpec resolves the -scaler flag: "reactive" or
// "predictive[:forecaster]", with bounds minServers..max (max defaults
// to 4× the starting servers when the -autoscale-max flag is unset).
func parseScalerSpec(arg string, minServers, maxFlag int, mu float64) (autoscale.Spec, error) {
	min := minServers
	if min <= 0 {
		min = 1
	}
	max := maxFlag
	if max <= 0 {
		max = 4 * min
	}
	policy, forecaster := arg, ""
	if i := strings.IndexByte(arg, ':'); i >= 0 {
		policy, forecaster = arg[:i], arg[i+1:]
	}
	var spec autoscale.Spec
	switch policy {
	case autoscale.PolicyReactive:
		if forecaster != "" {
			return autoscale.Spec{}, fmt.Errorf("reactive scalers take no forecaster (got %q)", forecaster)
		}
		spec = autoscale.ReactiveSpec(autoscale.DefaultConfig(min, max))
	case autoscale.PolicyPredictive:
		spec = autoscale.DefaultPredictiveSpec(min, max, mu, forecaster)
	default:
		return autoscale.Spec{}, fmt.Errorf("unknown policy %q (want one of %v)", policy, autoscale.Policies())
	}
	return spec, spec.Validate()
}

// parseAdmitSpec resolves the -admit flag: "policy[:k=v,...]" — e.g.
// "token-bucket:rate=6,burst=3", "queue-length:threshold=4", or
// "priority:threshold=4,cutoff=1".
func parseAdmitSpec(arg string) (admit.Spec, error) {
	policy, params := arg, ""
	if i := strings.IndexByte(arg, ':'); i >= 0 {
		policy, params = arg[:i], arg[i+1:]
	}
	spec := admit.Spec{Policy: policy}
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return admit.Spec{}, fmt.Errorf("parameter %q is not key=value", kv)
			}
			switch k {
			case "rate", "burst":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return admit.Spec{}, fmt.Errorf("%s: %v", k, err)
				}
				if k == "rate" {
					spec.Rate = f
				} else {
					spec.Burst = f
				}
			case "threshold", "cutoff":
				n, err := strconv.Atoi(v)
				if err != nil {
					return admit.Spec{}, fmt.Errorf("%s: %v", k, err)
				}
				if k == "threshold" {
					spec.Threshold = n
				} else {
					spec.Cutoff = n
				}
			default:
				return admit.Spec{}, fmt.Errorf("unknown parameter %q (want rate, burst, threshold, cutoff)", k)
			}
		}
	}
	return spec, spec.Validate()
}

// loadTopologyWithScaler resolves -topology and, when -scaler or
// -admit is set, attaches (or replaces) the entry tier's capacity
// controller and admission policy.
func loadTopologyWithScaler(arg, scalerArg, admitArg string, maxFlag int, mu float64) (cluster.Topology, error) {
	topo, err := loadTopology(arg)
	if err != nil {
		return cluster.Topology{}, err
	}
	if scalerArg != "" {
		entry := &topo.Tiers[0]
		servers := entry.ServersPerSite
		if servers <= 0 {
			servers = 1
		}
		spec, err := parseScalerSpec(scalerArg, servers, maxFlag, mu)
		if err != nil {
			return cluster.Topology{}, fmt.Errorf("-scaler: %w", err)
		}
		entry.Scaler = &spec
	}
	if admitArg != "" {
		spec, err := parseAdmitSpec(admitArg)
		if err != nil {
			return cluster.Topology{}, fmt.Errorf("-admit: %w", err)
		}
		topo.Tiers[0].Admission = &spec
	}
	return topo, nil
}

// runTopology replays a workload through the deployment graph and
// prints aggregate and per-tier latency/spill/drop/cost metrics. The
// workload is generated from the rate flags, or decoded from a -trace
// / -azure file. With stream set, generation happens on the fly —
// nothing trace-sized is ever held, so -duration can describe 10⁸+
// requests on a laptop (pair with -summary bounded); sharded replays
// and the file decoders always stream. With a positive shard
// resolution the replay fans out across engines via cluster.RunSharded,
// bit-identical for every shard count; pipeline additionally overlaps
// the shard and shared phases through watermarked bounded rings.
func runTopology(arg, scalerArg, admitArg string, maxFlag int, stream, pipeline bool, in workloadInput, sh shardChoice,
	gc genChoice, sites, servers int, rate, duration, warmup, arrivalSCV float64, seed int64,
	rejectPenalty float64, model app.InferenceModel, mode stats.Mode) {
	topo, err := loadTopologyWithScaler(arg, scalerArg, admitArg, maxFlag, model.Mu())
	if err != nil {
		fail("-topology: %v", err)
	}
	nShards, err := sh.resolve(topo)
	if err != nil {
		fail("-shards: %v", err)
	}
	if pipeline && nShards == 0 {
		// Auto mode fell back (or -shards 0 slipped through): -pipeline is
		// an explicit request, so refuse with the planner's reason rather
		// than quietly running the barrier-free classic engine.
		if err := cluster.Shardable(topo); err != nil {
			fail("-pipeline: %v", err)
		}
		fail("-pipeline needs sharded engines (resolved to the classic single engine)")
	}
	// Home-routed ingress fixes the trace's site count; a dispatcher
	// ingress (a pure-cloud graph) uses the -sites flag.
	ingress := topo.Tiers[0]
	genSites := sites
	perSite := servers
	homeIngress := ingress.Dispatch == ""
	if homeIngress {
		genSites = ingress.Sites
		if ingress.ServersPerSite > 0 {
			perSite = ingress.ServersPerSite
		}
	}
	gw, err := gc.resolve(genSites)
	if err != nil {
		fail("%v", err)
	}
	opts := cluster.Options{
		Warmup:     warmup,
		Seed:       seed + 1,
		Summary:    mode,
		Pipeline:   pipeline,
		GenWorkers: gw,
	}
	if rejectPenalty != 0 {
		pricing := econ.DefaultPricing()
		pricing.RejectPenalty = rejectPenalty
		opts.Pricing = &pricing
	}
	var res *cluster.TopologyResult
	var tr *cluster.WorkloadTrace
	switch {
	case in.active():
		// Replay a decoded file. Home ingress pins the site count: the
		// request decoder turns out-of-range sites into decode errors,
		// and the Azure header must declare exactly the home count. A
		// dispatcher-only graph takes whatever sites the file carries
		// (pre-scanned only when sharding needs the count up front).
		limit, fileSites := 0, 0
		switch {
		case in.azurePath != "":
			fileSites, err = in.azureSites()
			if err != nil {
				fail("-azure: %v", err)
			}
			if homeIngress && fileSites != genSites {
				fail("-azure: file has %d sites but topology %q expects %d",
					fileSites, topo.Name, genSites)
			}
		case homeIngress:
			limit, fileSites = genSites, genSites
		case nShards > 0:
			ws, err := scanWorkload(in.factory(0))
			if err != nil {
				fail("%s: %v", in.flagName(), err)
			}
			fileSites = ws.sites
		}
		factory := in.factory(limit)
		if nShards > 0 {
			if nShards > fileSites {
				nShards = fileSites
			}
			res, err = cluster.RunSharded(cluster.SourceShards(factory, fileSites), topo, opts, nShards)
		} else {
			res, err = cluster.Run(factory(), topo, opts)
		}
	case nShards > 0:
		if nShards > genSites {
			nShards = genSites
		}
		res, err = cluster.RunSharded(cluster.GenShards(genSpec(genSites, perSite, rate, duration, arrivalSCV, seed, model)),
			topo, opts, nShards)
	case stream:
		res, err = cluster.Run(opts.GenSource(genSpec(genSites, perSite, rate, duration, arrivalSCV, seed, model)), topo, opts)
	default:
		tr = generate(genSpec(genSites, perSite, rate, duration, arrivalSCV, seed, model), gw)
		opts.SizeHint = tr.Len()
		res, err = cluster.Run(tr.Source(), topo, opts)
	}
	if err != nil {
		fail("-topology: %v", err)
	}

	fmt.Printf("topology %s: %d tiers, %d spill edges, %d classes\n",
		res.Label, len(topo.Tiers), len(topo.Spills), len(topo.Classes))
	switch {
	case nShards > 0 && pipeline:
		fmt.Printf("engine: %d pipelined sharded engines streaming into the shared phase (bit-identical for any shard count)\n", nShards)
	case nShards > 0:
		fmt.Printf("engine: %d sharded engines + 1 shared-phase engine (bit-identical for any shard count)\n", nShards)
	}
	aggRate := 0.0
	if res.Duration > 0 {
		aggRate = float64(res.Offered) / res.Duration
	}
	switch {
	case in.active():
		fmt.Printf("workload (%s): %d requests over %.0fs (%.1f req/s aggregate)\n\n",
			in.label(), res.Offered, res.Duration, aggRate)
	case tr == nil:
		fmt.Printf("workload (streamed): %d requests over %.0fs (%.1f req/s aggregate), never materialized\n\n",
			res.Offered, res.Duration, aggRate)
	default:
		fmt.Printf("workload: %d requests over %.0fs (%.1f req/s aggregate), mean service %.1fms\n\n",
			tr.Len(), tr.Duration(), tr.TotalRate(), tr.MeanServiceTime()*1000)
	}

	rows := [][]interface{}{latencyRow(res.Label, &res.Result)}
	asciiplot.Table(os.Stdout, []string{"deployment", "util", "mean (ms)", "median", "p95", "p99", "max", "n"}, rows)

	fmt.Println()
	var tierRows [][]interface{}
	for _, tier := range res.Tiers {
		tierRows = append(tierRows, []interface{}{
			tier.Name, tier.Utilization,
			tier.EndToEnd.Mean() * 1000, tier.EndToEnd.P95() * 1000,
			int(tier.Served), int(tier.Spilled), int(tier.Dropped),
			tier.CostPerHour, tier.CostPerReq * 1000,
		})
	}
	asciiplot.Table(os.Stdout,
		[]string{"tier", "util", "mean (ms)", "p95 (ms)", "served", "spilled", "dropped",
			"$/hr", "$/kreq"}, tierRows)

	for _, tier := range res.Tiers {
		if len(tier.Sites) < 2 {
			continue
		}
		// The entry tier carries per-site client latency; deeper tiers
		// report per-station queueing instead.
		e2e := tier.Sites[0].EndToEnd.N() > 0
		header := []string{"site", "req/s", "util", "wait mean (ms)", "wait p95 (ms)", "n"}
		if e2e {
			header = []string{"site", "req/s", "util", "mean (ms)", "p95 (ms)", "n"}
		}
		fmt.Println()
		var siteRows [][]interface{}
		for _, s := range tier.Sites {
			d := s.Wait
			if e2e {
				d = s.EndToEnd
			}
			siteRows = append(siteRows, []interface{}{
				fmt.Sprintf("%s-%d", tier.Name, s.Site), s.MeanRate, s.Utilization,
				d.Mean() * 1000, d.P95() * 1000, d.N(),
			})
		}
		asciiplot.Table(os.Stdout, header, siteRows)
	}

	// Per-SLO-class tables (classful topologies only): how each class
	// fared at each tier it touched, plus the tier's Jain fairness
	// index over per-class served counts.
	for _, tier := range res.Tiers {
		var classTotal uint64
		for _, c := range tier.Classes {
			classTotal += c.Served + c.Dropped + c.Rejected
		}
		if classTotal == 0 {
			continue
		}
		fmt.Println()
		var classRows [][]interface{}
		served := make([]float64, 0, len(tier.Classes))
		for _, c := range tier.Classes {
			classRows = append(classRows, []interface{}{
				tier.Name + "/" + c.Name, int(c.Served), int(c.Dropped), int(c.Rejected),
				c.EndToEnd.Mean() * 1000, c.EndToEnd.P95() * 1000,
			})
			served = append(served, float64(c.Served))
		}
		asciiplot.Table(os.Stdout,
			[]string{"class", "served", "dropped", "rejected", "mean (ms)", "p95 (ms)"}, classRows)
		fmt.Printf("fairness[%s]: Jain index %.3f over per-class served counts\n",
			tier.Name, stats.Jain(served))
	}

	fmt.Println()
	if res.Redirected > 0 {
		fmt.Printf("geographic LB redirected %d requests\n", res.Redirected)
	}
	if res.Dropped > 0 {
		fmt.Printf("bounded queues dropped %d requests\n", res.Dropped)
	}
	if res.Rejected > 0 {
		fmt.Printf("admission rejected %d requests\n", res.Rejected)
		for i, tier := range res.Tiers {
			if tier.Rejected > 0 && topo.Tiers[i].Admission != nil {
				fmt.Printf("  %s [%s]: %d rejected\n",
					tier.Name, topo.Tiers[i].Admission.Label(), tier.Rejected)
			}
		}
	}
	for _, tier := range res.Tiers {
		if tier.ScalerPolicy != "" {
			fmt.Printf("scaler[%s %s]: %d scale-ups, %d scale-downs, peak %d servers, %.0f server-sec\n",
				tier.Name, tier.ScalerPolicy, tier.ScaleUps, tier.ScaleDowns,
				tier.PeakServers, tier.ServerSeconds)
		}
	}
	fmt.Printf("cost: $%.4f total capacity spend (%.4f $/kreq)\n",
		res.TotalCost, res.CostPerRequest*1000)
	var rejCost float64
	for _, tier := range res.Tiers {
		rejCost += tier.RejectionCost
	}
	if rejCost > 0 {
		fmt.Printf("  includes $%.4f admission-rejection penalty\n", rejCost)
	}
	if res.Rejected > 0 {
		fmt.Printf("conservation: offered %d = served %d + dropped %d + rejected %d + warmup-discarded %d\n",
			res.Offered, res.Completed, res.Dropped, res.Rejected,
			res.Consumed-res.Completed-res.Dropped-res.Rejected)
	} else {
		fmt.Printf("conservation: offered %d = served %d + dropped %d + warmup-discarded %d\n",
			res.Offered, res.Completed, res.Dropped,
			res.Consumed-res.Completed-res.Dropped)
	}
}

// generate materializes a trace through the resolved -gen-workers
// count: parallel workers when gw > 1, the classic serial generator
// otherwise — identical output either way.
func generate(spec cluster.GenSpec, gw int) *cluster.WorkloadTrace {
	if gw > 1 {
		return cluster.GenerateParallel(spec, gw)
	}
	return cluster.Generate(spec)
}

// genSpec assembles the generator spec the topology runners share.
func genSpec(sites, perSite int, rate, duration, arrivalSCV float64, seed int64,
	model app.InferenceModel) cluster.GenSpec {
	return cluster.GenSpec{
		Sites:       sites,
		Duration:    duration,
		PerSiteRate: rate * float64(perSite),
		ArrivalSCV:  arrivalSCV,
		Model:       model,
		Seed:        seed,
	}
}

// runTopologySweepCLI sweeps request rates through the deployment
// graph (the ROADMAP's topology-sweep CLI): per-rate aggregate and
// per-tier tables, plus the inversion crossover against a pooled cloud
// of equal total capacity on the -scenario's cloud path — the paper's
// edge-vs-cloud question generalized to arbitrary hierarchies.
func runTopologySweepCLI(arg, sweepArg, scalerArg, admitArg string, maxFlag int, stream bool,
	in workloadInput, sh shardChoice, gc genChoice, sc netem.Scenario,
	duration, warmup, arrivalSCV float64, seed int64, model app.InferenceModel, mode stats.Mode) {
	topo, err := loadTopologyWithScaler(arg, scalerArg, admitArg, maxFlag, model.Mu())
	if err != nil {
		fail("-topology: %v", err)
	}
	rates, err := parseRates(sweepArg)
	if err != nil {
		fail("-sweep: %v", err)
	}
	// The capacity-matched baseline: every server the hierarchy may
	// deploy, pooled behind one central queue at the scenario's cloud
	// distance, replaying the identical per-rate traces (paired, so the
	// crossover carries no unpaired sampling noise). Scaled tiers count
	// at their scaler's Max — the capacity budget the elastic tier can
	// reach — so attaching a scaler does not let the hierarchy quietly
	// outgrow its "equal-capacity" rival.
	total := 0
	for _, t := range topo.Tiers {
		per := t.ServersPerSite
		if per <= 0 {
			per = 1
		}
		switch {
		case t.Scaler != nil:
			total += t.Sites * t.Scaler.Max
		case t.PerSiteServers != nil:
			for _, s := range t.PerSiteServers {
				total += s
			}
		default:
			total += t.Sites * per
		}
	}
	baseline := cluster.CloudTopology(cluster.CloudConfig{
		Servers: total, Path: sc.Cloud, Policy: cluster.CentralQueue,
	})
	sweepCfg := experiments.TopologySweepConfig{
		Topology:   topo,
		Rates:      rates,
		Duration:   duration,
		Warmup:     warmup,
		Seed:       seed,
		Model:      model,
		ArrivalSCV: arrivalSCV,
		Summary:    mode,
		Baseline:   &baseline,
	}
	switch {
	case in.active() || stream:
		// Source-driven sweeps replay one engine per point: a factory
		// cannot be split into per-site ranges.
		if sh.set && sh.n != 0 {
			from := "-stream"
			if in.active() {
				from = in.flagName()
			}
			fail("-shards cannot combine with a %s sweep: a source factory cannot be split into site ranges", from)
		}
	case sh.set:
		sweepCfg.Shards = sh.n
	default:
		sweepCfg.Shards = experiments.AutoShards
	}
	if stream {
		// Each point (and its paired baseline) re-derives a generator
		// source from the same spec: identical sequences, O(1) memory.
		// The -gen-workers choice rides along — ParallelStream emits the
		// bit-identical sequence, so the sweep's pairing is unaffected.
		genSites := topo.Tiers[0].Sites
		if topo.Tiers[0].Dispatch != "" {
			genSites = 1 << 20 // dispatcher ingress: sites come from the spec; skip clamping
		}
		gw, err := gc.resolve(genSites)
		if err != nil {
			fail("%v", err)
		}
		genOpts := cluster.Options{GenWorkers: gw}
		sweepCfg.Source = genOpts.GenSource
	}
	if in.active() {
		// A recorded trace carries one rate; the sweep replays it with
		// its timeline rescaled so the aggregate rate lands on each
		// swept point (service demands untouched). One pre-scan measures
		// the native rate and validates the file end to end.
		limit := 0
		if ingress := topo.Tiers[0]; ingress.Dispatch == "" {
			limit = ingress.Sites
		}
		ws, err := scanWorkload(in.factory(limit))
		if err != nil {
			fail("%s: %v", in.flagName(), err)
		}
		if limit > 0 && in.azurePath != "" && ws.sites != limit {
			fail("-azure: file has %d sites but topology %q expects %d", ws.sites, topo.Name, limit)
		}
		factory := in.factory(limit)
		sweepCfg.Source = func(spec cluster.GenSpec) cluster.Source {
			target := spec.PerSiteRate * float64(spec.Sites)
			return trace.TimeScale(factory(), ws.rate/target)
		}
		fmt.Printf("workload (%s): %d requests over %.0fs (%.1f req/s aggregate native), rescaled per swept rate\n",
			in.label(), ws.n, ws.dur, ws.rate)
	}
	res, err := experiments.RunTopologySweep(sweepCfg)
	if err != nil {
		fail("-sweep: %v", err)
	}
	cloud := res.Baseline

	fmt.Printf("topology sweep %s: %d tiers, %d servers max capacity; cloud baseline %d pooled servers at %.0fms\n\n",
		topo.Name, len(topo.Tiers), total, total, sc.Cloud.MeanRTT()*1000)
	var rows [][]interface{}
	for i, p := range res.Points {
		c := cloud[i]
		rows = append(rows, []interface{}{
			p.RatePerServer,
			p.Mean * 1000, c.Mean * 1000, p.P95 * 1000, c.P95 * 1000,
			int(p.Dropped),
		})
	}
	asciiplot.Table(os.Stdout, []string{
		"req/s/srv", "topo mean", "cloud mean", "topo p95", "cloud p95", "dropped",
	}, rows)

	fmt.Println()
	var tierRows [][]interface{}
	for i, p := range res.Points {
		for _, t := range p.Tiers {
			tierRows = append(tierRows, []interface{}{
				res.Points[i].RatePerServer, t.Name, t.Utilization,
				t.Mean * 1000, t.P95 * 1000, int(t.Served), int(t.Spilled),
				t.PeakServers, t.CostPerReq * 1000,
			})
		}
	}
	asciiplot.Table(os.Stdout, []string{
		"req/s/srv", "tier", "util", "mean (ms)", "p95 (ms)", "served", "spilled",
		"peak srv", "$/kreq",
	}, tierRows)

	fmt.Println()
	for _, m := range []struct {
		name string
		pick func(experiments.TopologyPoint) float64
	}{
		{"mean", func(p experiments.TopologyPoint) float64 { return p.Mean }},
		{"p95", func(p experiments.TopologyPoint) float64 { return p.P95 }},
	} {
		switch rate, atFloor, ok := sweepCrossover(res.Points, cloud, rates, m.pick); {
		case ok && atFloor:
			fmt.Printf("crossover (%s): hierarchy already loses to the pooled cloud at %.1f req/s/srv (sweep lower rates to bracket it)\n", m.name, rate)
		case ok:
			fmt.Printf("crossover (%s): hierarchy loses to the pooled cloud above ~%.1f req/s/srv\n", m.name, rate)
		default:
			fmt.Printf("crossover (%s): hierarchy beats the pooled cloud across the swept rates\n", m.name)
		}
	}
}

// sweepCrossover finds the rate where the topology's metric first
// exceeds the cloud baseline's, linearly interpolating the sign
// change. atFloor reports that the hierarchy already loses at the
// lowest swept rate — the true crossover lies below the swept range.
func sweepCrossover(topo, cloud []experiments.TopologyPoint, rates []float64,
	pick func(experiments.TopologyPoint) float64) (rate float64, atFloor, found bool) {
	prev := 0.0
	for i := range topo {
		d := pick(topo[i]) - pick(cloud[i])
		if d > 0 {
			if i == 0 {
				return rates[0], true, true
			}
			// Interpolate between the bracketing rates on the gap
			// (prev <= 0 < d, so the denominator is positive).
			frac := -prev / (d - prev)
			return rates[i-1] + frac*(rates[i]-rates[i-1]), false, true
		}
		prev = d
	}
	return 0, false, false
}

// runGridCLI evaluates the crossover surface (experiments.RunGrid) and
// renders it as a heatmap of hierarchy-minus-pooled mean latency, the
// per-column inversion points, and the best depth per budget.
func runGridCLI(rates []float64, budgets, depths []int, reps, sites int, gc genChoice,
	duration, warmup, arrivalSCV float64, seed int64, model app.InferenceModel, mode stats.Mode) {
	gw, err := gc.resolve(sites)
	if err != nil {
		fail("%v", err)
	}
	res, err := experiments.RunGrid(experiments.GridConfig{
		Sites:        sites,
		Rates:        rates,
		Budgets:      budgets,
		Depths:       depths,
		Replications: reps,
		Duration:     duration,
		Warmup:       warmup,
		Seed:         seed,
		Model:        model,
		ArrivalSCV:   arrivalSCV,
		Summary:      mode,
		GenWorkers:   gw,
	})
	if err != nil {
		fail("-grid: %v", err)
	}
	cfg := res.Config

	fmt.Printf("crossover grid: %d sites, %d rates x %d budgets x %d depths, %d replication(s); "+
		"one broadcast generation pass per trace\n\n",
		cfg.Sites, len(cfg.Rates), len(cfg.Budgets), len(cfg.Depths), cfg.Replications)

	var rows []string
	var values [][]float64
	for _, b := range cfg.Budgets {
		for _, d := range cfg.Depths {
			rows = append(rows, fmt.Sprintf("b%d d%d", b, d))
			var vs []float64
			for _, rate := range cfg.Rates {
				vs = append(vs, (res.Cell(rate, b, d).Mean-res.Baseline(rate, b).Mean)*1000)
			}
			values = append(values, vs)
		}
	}
	cols := make([]string, len(cfg.Rates))
	for i, r := range cfg.Rates {
		cols[i] = fmt.Sprintf("%g", r)
	}
	asciiplot.Heatmap(os.Stdout,
		"hierarchy mean - pooled-cloud mean (ms) vs per-site req/s (dark = inverted)",
		rows, cols, values)

	fmt.Println()
	var out [][]interface{}
	maxRate := cfg.Rates[len(cfg.Rates)-1]
	for _, c := range res.Crossovers {
		cross := "none in range"
		switch {
		case c.AtFloor:
			cross = "inverted at floor"
		case !math.IsNaN(c.Crossover):
			cross = fmt.Sprintf("%.1f req/s", c.Crossover)
		}
		cell := res.Cell(maxRate, c.Budget, c.Depth)
		base := res.Baseline(maxRate, c.Budget)
		out = append(out, []interface{}{
			c.Budget, c.Depth, cross,
			cell.Mean * 1000, base.Mean * 1000, cell.Spilled, cell.Dropped,
		})
	}
	asciiplot.Table(os.Stdout, []string{
		"budget", "depth", "inversion at",
		"mean @max (ms)", "pooled @max (ms)", "spilled", "dropped",
	}, out)

	fmt.Println()
	for _, b := range cfg.Budgets {
		d, at, ok := res.BestDepth(b)
		switch {
		case !ok:
			fmt.Printf("budget %d: every depth already inverted at the lowest rate\n", b)
		case math.IsInf(at, 1):
			fmt.Printf("budget %d: depth %d delays inversion longest (past the swept range)\n", b, d)
		default:
			fmt.Printf("budget %d: depth %d delays inversion longest (to %.1f req/s)\n", b, d, at)
		}
	}
}

// writeMemProfile captures an end-of-run heap profile (after a GC, so
// it reflects retained memory rather than garbage).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgesim: -memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "edgesim: -memprofile:", err)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %w", p, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("rate %v must be positive", v)
		}
		out = append(out, v)
	}
	// The crossover scan interpolates the first sign change, which only
	// means anything on a monotone rate axis.
	sort.Float64s(out)
	return out, nil
}

func latencyRow(name string, r *cluster.Result) []interface{} {
	return []interface{}{
		name, r.Utilization,
		r.EndToEnd.Mean() * 1000, r.EndToEnd.Median() * 1000,
		r.EndToEnd.P95() * 1000, r.EndToEnd.P99() * 1000,
		r.EndToEnd.Quantile(1) * 1000, r.EndToEnd.N(),
	}
}

func parseWeights(s string, k int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != k {
		return nil, fmt.Errorf("-skew needs %d weights, got %d", k, len(parts))
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}
