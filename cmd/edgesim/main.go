// Command edgesim runs one simulated edge-vs-cloud comparison from
// command-line flags, printing mean/median/p95/p99 latencies, per-site
// utilizations, and the inversion verdict. It is the general-purpose
// front end to the simulator; cmd/figures wraps the same machinery in
// the paper's specific configurations.
//
// Example (the paper's Figure 3 point at 9 req/s):
//
//	edgesim -sites 5 -servers 1 -rate 9 -scenario typical-25ms -duration 600
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/app"
	"repro/internal/asciiplot"
	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/netem"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	sites := flag.Int("sites", 5, "number of edge sites")
	servers := flag.Int("servers", 1, "servers per edge site")
	rate := flag.Float64("rate", 8, "request rate per server (req/s)")
	scenario := flag.String("scenario", "typical-25ms", "netem scenario: nearby-13ms|typical-25ms|distant-54ms|transcontinental-80ms")
	duration := flag.Float64("duration", 600, "simulated seconds")
	warmup := flag.Float64("warmup", 60, "warmup seconds discarded from metrics")
	seed := flag.Int64("seed", 1, "random seed")
	arrivalSCV := flag.Float64("arrival-scv", cluster.DefaultArrivalSCV, "squared CoV of inter-arrival times")
	serviceSCV := flag.Float64("service-scv", app.DefaultServiceSCV, "squared CoV of service times")
	policy := flag.String("policy", "central-queue", "cloud dispatch: central-queue|round-robin|least-connections|power-of-two|random")
	slowdown := flag.Float64("edge-slowdown", 1, "edge service-time slowdown factor (resource-constrained edge)")
	jockey := flag.Int("jockey", 0, "geographic LB: redirect when home-site load >= this (0=off)")
	detour := flag.Float64("detour-ms", 5, "extra RTT for jockeyed requests (ms)")
	skew := flag.String("skew", "", "comma-separated per-site weights (e.g. 5,2,1,1,1)")
	queueCap := flag.Int("queue-cap", 0, "bound each queue at this many waiting requests (0=unbounded)")
	summary := flag.String("summary", "exact", "latency summary memory model: exact (retain every sample) | bounded (O(1) streaming moments + P2 quantiles, for huge replays)")
	autoscaleMax := flag.Int("autoscale-max", 0, "also run an autoscaled edge growing each site up to this many servers (0=off)")
	overflowAt := flag.Int("overflow-at", 0, "also run a hierarchical edge overflowing to the cloud at this site load (0=off)")
	flag.Parse()

	sc, ok := netem.ScenarioByName(*scenario)
	if !ok {
		fmt.Fprintf(os.Stderr, "edgesim: unknown scenario %q\n", *scenario)
		os.Exit(1)
	}
	var mode stats.Mode
	switch *summary {
	case "exact":
		mode = stats.Exact
	case "bounded":
		mode = stats.Bounded
	default:
		fmt.Fprintf(os.Stderr, "edgesim: unknown -summary %q (want exact|bounded)\n", *summary)
		os.Exit(1)
	}
	model := app.NewInferenceModelWith(1/app.SaturationRate, *serviceSCV)

	spec := cluster.GenSpec{
		Sites:       *sites,
		Duration:    *duration,
		PerSiteRate: *rate * float64(*servers),
		ArrivalSCV:  *arrivalSCV,
		Model:       model,
		Seed:        *seed,
	}
	if *skew != "" {
		weights, err := parseWeights(*skew, *sites)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgesim:", err)
			os.Exit(1)
		}
		totalRate := *rate * float64(*servers) * float64(*sites)
		part := workload.NewStatic(weights)
		procs := make([]workload.ArrivalProcess, *sites)
		for i, w := range part.W {
			procs[i] = workload.NewRenewal(dist.FitSCV(1/(totalRate*w), *arrivalSCV))
		}
		spec.Arrivals = procs
	}
	tr := cluster.Generate(spec)

	// The edge and cloud replays share the trace but nothing else; run
	// them concurrently through the paired runner.
	edge, cloud := cluster.RunPaired(tr, cluster.EdgeConfig{
		Sites:           *sites,
		ServersPerSite:  *servers,
		Path:            sc.Edge,
		Warmup:          *warmup,
		Seed:            *seed + 1,
		SlowdownFactor:  *slowdown,
		JockeyThreshold: *jockey,
		DetourRTT:       *detour / 1000,
		QueueCap:        *queueCap,
		Summary:         mode,
	}, cluster.CloudConfig{
		Servers: *sites * *servers,
		Path:    sc.Cloud,
		Policy:  cluster.DispatchPolicy(*policy),
		Warmup:  *warmup,
		Seed:    *seed + 2,
		Summary: mode,
	})

	fmt.Printf("scenario %s: edge RTT %.1fms, cloud RTT %.1fms, Δn %.1fms\n",
		sc.Name, sc.Edge.MeanRTT()*1000, sc.Cloud.MeanRTT()*1000, sc.DeltaN()*1000)
	fmt.Printf("workload: %d requests over %.0fs (%.1f req/s aggregate), mean service %.1fms\n\n",
		tr.Len(), tr.Duration(), tr.TotalRate(), tr.MeanServiceTime()*1000)

	rows := [][]interface{}{
		latencyRow("edge", edge),
		latencyRow("cloud", cloud),
	}
	if *autoscaleMax > 0 {
		scaled := cluster.RunEdgeAutoscaled(tr, cluster.EdgeConfig{
			Sites: *sites, ServersPerSite: *servers, Path: sc.Edge,
			Warmup: *warmup, Seed: *seed + 1, Summary: mode,
		}, autoscale.Config{
			Interval: 2, Min: *servers, Max: *autoscaleMax,
			UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 6,
		})
		rows = append(rows, latencyRow("edge+autoscale", &scaled.Result))
		defer fmt.Printf("autoscaler: %d scale-ups, %d scale-downs, peak %d servers/site\n",
			scaled.ScaleUps, scaled.ScaleDowns, scaled.PeakServers)
	}
	if *overflowAt > 0 {
		over := cluster.RunEdgeWithOverflow(tr, cluster.OverflowConfig{
			Sites: *sites, ServersPerSite: *servers,
			EdgePath: sc.Edge, CloudPath: sc.Cloud,
			CloudServers: *sites * *servers, OverflowThreshold: *overflowAt,
			Warmup: *warmup, Seed: *seed + 1, Summary: mode,
		})
		rows = append(rows, latencyRow("edge+overflow", &over.Result))
		defer fmt.Printf("overflow: %d requests (%.1f%%) served by the cloud backstop\n",
			over.Overflowed, 100*float64(over.Overflowed)/float64(tr.Len()))
	}
	asciiplot.Table(os.Stdout, []string{"deployment", "util", "mean (ms)", "median", "p95", "p99", "max", "n"}, rows)
	if edge.Dropped > 0 {
		fmt.Printf("bounded queues dropped %d requests\n", edge.Dropped)
	}

	fmt.Println()
	var siteRows [][]interface{}
	for _, s := range edge.Sites {
		siteRows = append(siteRows, []interface{}{
			fmt.Sprintf("edge-%d", s.Site), s.MeanRate,
			s.Utilization, s.EndToEnd.Mean() * 1000, s.EndToEnd.P95() * 1000, s.EndToEnd.N(),
		})
	}
	asciiplot.Table(os.Stdout, []string{"site", "req/s", "util", "mean (ms)", "p95 (ms)", "n"}, siteRows)
	if edge.Redirected > 0 {
		fmt.Printf("geographic LB redirected %d requests\n", edge.Redirected)
	}

	fmt.Println()
	switch {
	case edge.MeanLatency() > cloud.MeanLatency() && edge.P95Latency() > cloud.P95Latency():
		fmt.Println("verdict: PERFORMANCE INVERSION — the cloud wins on both mean and p95.")
	case edge.MeanLatency() > cloud.MeanLatency():
		fmt.Println("verdict: mean-latency inversion (cloud wins on mean; edge wins on p95).")
	case edge.P95Latency() > cloud.P95Latency():
		fmt.Println("verdict: tail inversion — edge wins on mean but the cloud wins on p95.")
	default:
		fmt.Println("verdict: the edge wins on both mean and p95.")
	}
}

func latencyRow(name string, r *cluster.Result) []interface{} {
	return []interface{}{
		name, r.Utilization,
		r.EndToEnd.Mean() * 1000, r.EndToEnd.Median() * 1000,
		r.EndToEnd.P95() * 1000, r.EndToEnd.P99() * 1000,
		r.EndToEnd.Quantile(1) * 1000, r.EndToEnd.N(),
	}
}

func parseWeights(s string, k int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != k {
		return nil, fmt.Errorf("-skew needs %d weights, got %d", k, len(parts))
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}
