package main

// CLI workload plumbing for -topology runs: the -trace/-azure file
// decoders (with binary .etb auto-detection), the -shards engine
// choice, the -gen-workers generator choice, the -compile format
// converter, and the pre-scan that lets a -sweep rescale a recorded
// trace onto its rate axis.

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// workloadInput is the parsed -trace/-azure flag pair; at most one path
// is set. seed feeds the Azure decoder's service-time synthesis, fixed
// per process so every factory call replays the identical sequence (the
// SourceFactory contract sharded and paired runs rely on).
type workloadInput struct {
	tracePath string
	azurePath string
	azureBin  float64
	seed      int64
}

func (in workloadInput) active() bool { return in.tracePath != "" || in.azurePath != "" }

func (in workloadInput) path() string {
	if in.tracePath != "" {
		return in.tracePath
	}
	return in.azurePath
}

func (in workloadInput) flagName() string {
	if in.tracePath != "" {
		return "-trace"
	}
	return "-azure"
}

func (in workloadInput) label() string { return in.flagName()[1:] + " " + in.path() }

// factory builds fresh decoders over the file. limitSites > 0 makes a
// request-CSV record outside [0, limitSites) a decode error instead of
// a replay panic (the Azure decoder's site count is fixed by its header
// and validated separately). Each call opens the file anew — sharded
// replays scan one decoder per shard, concurrently — and the handles
// live until process exit, which for a CLI run is the replay's
// lifetime anyway.
func (in workloadInput) factory(limitSites int) cluster.SourceFactory {
	return func() cluster.Source {
		f, err := os.Open(in.path())
		if err != nil {
			return errorSource{err: err}
		}
		if in.tracePath != "" {
			// -trace auto-detects the format: a .etb signature selects
			// the binary decoder, anything else the request-CSV one (a
			// peek never consumes, so the chosen decoder sees the whole
			// file; files shorter than the magic fall through to CSV,
			// whose header check reports them).
			br := bufio.NewReader(f)
			if head, _ := br.Peek(len(trace.BinaryMagic)); string(head) == trace.BinaryMagic {
				src := trace.StreamBinary(br)
				if limitSites > 0 {
					src.LimitSites(limitSites)
				}
				return src
			}
			src := trace.StreamRequestsCSV(br)
			if limitSites > 0 {
				src.LimitSites(limitSites)
			}
			return src
		}
		return trace.StreamAzureCSV(f, trace.AzureStreamOptions{
			BinWidth: in.azureBin,
			Seed:     in.seed,
		})
	}
}

// azureSites reads the Azure CSV header for its site count, which the
// format fixes before any data row.
func (in workloadInput) azureSites() (int, error) {
	f, err := os.Open(in.azurePath)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	src := trace.StreamAzureCSV(f, trace.AzureStreamOptions{BinWidth: in.azureBin})
	if src.Sites() == 0 {
		return 0, src.Err()
	}
	return src.Sites(), nil
}

// errorSource is a Source that failed before its first record — a
// factory's file-open error, surfaced through the FallibleSource
// contract so a shard worker reports it instead of panicking.
type errorSource struct{ err error }

func (e errorSource) Next() (cluster.RequestRecord, bool) { return cluster.RequestRecord{}, false }

func (e errorSource) Err() error { return e.err }

// workloadStats is one pre-scan over a decoder: record count, timeline
// end, observed site count, and the aggregate request rate.
type workloadStats struct {
	n     uint64
	dur   float64
	sites int
	rate  float64
}

// scanWorkload drains one decoder built by factory, so sweeps can
// rescale the trace onto their rate axis and sharded replays of
// shared-ingress graphs can learn the site count before partitioning.
func scanWorkload(factory cluster.SourceFactory) (workloadStats, error) {
	var ws workloadStats
	src := factory()
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		ws.n++
		ws.dur = rec.Time
		if rec.Site+1 > ws.sites {
			ws.sites = rec.Site + 1
		}
	}
	if fs, ok := src.(cluster.FallibleSource); ok {
		if err := fs.Err(); err != nil {
			return ws, err
		}
	}
	if ws.n == 0 || ws.dur <= 0 {
		return ws, fmt.Errorf("workload has %d requests over %gs; nothing to replay", ws.n, ws.dur)
	}
	ws.rate = float64(ws.n) / ws.dur
	return ws, nil
}

// shardChoice is the parsed -shards flag; n is meaningful only when the
// flag was given explicitly. verbose (-v) narrates the resolution on
// stderr — in particular the planner's reason when auto mode falls
// back to the single engine, which is otherwise silent.
type shardChoice struct {
	set     bool
	n       int
	verbose bool
}

// resolve maps the flag onto a replay engine: 0 selects the classic
// single-engine cluster.Run, a positive count that many sharded engines
// through cluster.RunSharded. Unset picks one shard per CPU when the
// graph shards and quietly falls back to the single engine when it
// cannot (pass -v to hear why); an explicit count refuses unshardable
// graphs with the planner's reason.
func (sh shardChoice) resolve(topo cluster.Topology) (int, error) {
	if !sh.set {
		if err := cluster.Shardable(topo); err != nil {
			if sh.verbose {
				fmt.Fprintf(os.Stderr, "edgesim: -shards auto: falling back to the classic single engine: %v\n", err)
			}
			return 0, nil
		}
		n := runtime.GOMAXPROCS(0)
		if sh.verbose {
			fmt.Fprintf(os.Stderr, "edgesim: -shards auto: %d sharded engines (one per CPU)\n", n)
		}
		return n, nil
	}
	if sh.n == 0 {
		return 0, nil
	}
	if err := cluster.Shardable(topo); err != nil {
		return sh.n, err
	}
	return sh.n, nil
}

// genChoice is the parsed -gen-workers flag: how many goroutines the
// synthetic-workload generator fans out across. Unlike -shards, every
// setting is bit-identical — ParallelStream merges the per-site
// substreams back into serial Stream's exact sequence — so the choice
// is purely about generation throughput. verbose (-v) narrates the
// resolution on stderr, mirroring the -shards auto explanation.
type genChoice struct {
	arg     string
	verbose bool
}

// resolve maps the flag onto an Options.GenWorkers value for a
// generator over sites per-site streams: 0 means the serial generator,
// n > 1 that many parallel workers. "auto" picks one worker per CPU
// and degrades to serial on a single-CPU machine (pass -v to hear
// which happened); an explicit count is clamped to one worker per
// site, the fan-out's natural maximum.
func (g genChoice) resolve(sites int) (int, error) {
	var n int
	switch g.arg {
	case "", "serial":
		return 0, nil
	case "auto":
		n = runtime.GOMAXPROCS(0)
		if n <= 1 {
			if g.verbose {
				fmt.Fprintln(os.Stderr, "edgesim: -gen-workers auto: falling back to the serial generator (GOMAXPROCS=1)")
			}
			return 0, nil
		}
	default:
		v, err := strconv.Atoi(g.arg)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("-gen-workers: want serial, auto, or a nonnegative count (got %q)", g.arg)
		}
		n = v
		if n <= 1 {
			return 0, nil
		}
	}
	if n > sites {
		if g.verbose {
			fmt.Fprintf(os.Stderr, "edgesim: -gen-workers: clamping %d to %d (one worker per site)\n", n, sites)
		}
		n = sites
		if n <= 1 {
			if g.verbose {
				fmt.Fprintln(os.Stderr, "edgesim: -gen-workers: single site; using the serial generator")
			}
			return 0, nil
		}
	}
	if g.verbose {
		fmt.Fprintf(os.Stderr, "edgesim: -gen-workers: %d parallel generator workers (bit-identical to serial)\n", n)
	}
	return n, nil
}

// siteCounter is the decoder face runCompile reads the site count
// from; every trace decoder implements it.
type siteCounter interface{ Sites() int }

// runCompile converts the -trace/-azure input into the format the
// output path's extension selects — ".csv" the request-CSV text
// format, anything else (conventionally ".etb") the binary trace
// format — then prints what it wrote and exits. Compiling an Azure
// count file bakes its synthesized arrivals (and the -seed's service
// times) into replayable records; compiling a CSV to .etb is the
// "parse once" step that lets every later replay skip text decoding.
// A decode or write failure removes the partial output, so a bad
// input never leaves a plausible-looking compiled file behind.
func runCompile(in workloadInput, outPath string) {
	src := in.factory(0)()
	out, err := os.Create(outPath)
	if err != nil {
		fail("-compile: %v", err)
	}
	var n int
	if strings.HasSuffix(outPath, ".csv") {
		n, err = trace.WriteRequestsCSV(out, src)
	} else {
		n, err = trace.WriteBinary(out, src)
	}
	if err == nil {
		err = out.Close()
	} else {
		out.Close()
	}
	if err != nil {
		os.Remove(outPath)
		fail("-compile: %v", err)
	}
	size := int64(-1)
	if st, statErr := os.Stat(outPath); statErr == nil {
		size = st.Size()
	}
	sites := 0
	if sc, ok := src.(siteCounter); ok {
		sites = sc.Sites()
	}
	fmt.Printf("compiled %s -> %s: %d records, %d sites, %d bytes\n",
		in.path(), outPath, n, sites, size)
}
