// Command loadtest runs the live end-to-end experiment on localhost:
// it starts real HTTP inference servers (edge sites and a cloud
// cluster), fronts the cloud with an HAProxy-like reverse proxy, injects
// the paper's region RTTs, drives both deployments with the open-loop
// load generator, and prints the measured latency comparison.
//
// This is the wall-clock counterpart of cmd/edgesim: the same experiment
// over real sockets and goroutine scheduling instead of the discrete-
// event simulator. Durations are necessarily real time, so keep them
// short (the default 30 s run already issues thousands of requests).
//
// Example:
//
//	loadtest -sites 3 -rate 8 -scenario typical-25ms -duration 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/asciiplot"
	"repro/internal/httpserv"
	"repro/internal/loadgen"
	"repro/internal/netem"
	"repro/internal/workload"
)

func main() {
	sites := flag.Int("sites", 3, "number of edge sites (cloud gets the same server count)")
	rate := flag.Float64("rate", 8, "request rate per edge site (req/s)")
	scenario := flag.String("scenario", "typical-25ms", "netem scenario name")
	duration := flag.Duration("duration", 30*time.Second, "wall-clock test duration")
	warmup := flag.Duration("warmup", 5*time.Second, "warmup discarded from metrics")
	seed := flag.Int64("seed", 1, "random seed")
	meanService := flag.Float64("service-ms", 1000/app.SaturationRate, "mean service time (ms)")
	spin := flag.Bool("spin", false, "burn CPU for service time instead of sleeping")
	flag.Parse()

	sc, ok := netem.ScenarioByName(*scenario)
	if !ok {
		fmt.Fprintf(os.Stderr, "loadtest: unknown scenario %q\n", *scenario)
		os.Exit(1)
	}
	model := app.NewInferenceModelWith(*meanService/1000, app.DefaultServiceSCV)

	// Start edge servers, one per site, each behind its own RTT-injecting
	// proxy (its local 1 ms path).
	var edgeURLs []string
	var closers []func()
	for i := 0; i < *sites; i++ {
		srv := httpserv.NewInferenceServer(model, 1, *seed+int64(i))
		if *spin {
			srv.Executor = app.SpinExecutor{}
		}
		backendURL, closeB := serve(srv)
		proxy, err := httpserv.NewProxy([]string{backendURL}, httpserv.PolicyRoundRobin, sc.Edge, *seed+100+int64(i))
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadtest:", err)
			os.Exit(1)
		}
		proxyURL, closeP := serve(proxy)
		edgeURLs = append(edgeURLs, proxyURL)
		closers = append(closers, closeB, closeP)
	}

	// Start the cloud: the same number of servers behind one
	// least-connections proxy with the cloud RTT.
	var cloudBackends []string
	for i := 0; i < *sites; i++ {
		srv := httpserv.NewInferenceServer(model, 1, *seed+200+int64(i))
		if *spin {
			srv.Executor = app.SpinExecutor{}
		}
		u, c := serve(srv)
		cloudBackends = append(cloudBackends, u)
		closers = append(closers, c)
	}
	cloudProxy, err := httpserv.NewProxy(cloudBackends, httpserv.PolicyLeastConn, sc.Cloud, *seed+300)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
	cloudURL, closeC := serve(cloudProxy)
	closers = append(closers, closeC)
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	fmt.Printf("scenario %s: %d edge sites at %.1f req/s each vs cloud (%d servers)\n",
		sc.Name, *sites, *rate, *sites)
	fmt.Printf("running %v per deployment (plus %v warmup)...\n\n", *duration, *warmup)

	ctx := context.Background()

	// Drive every edge site concurrently, then the cloud at the
	// aggregate rate.
	edgeReport := &loadgen.Report{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, u := range edgeURLs {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			rep, err := loadgen.Run(ctx, loadgen.Config{
				TargetURL: url,
				Arrivals:  workload.NewPaced(*rate, 3),
				Duration:  *duration,
				Warmup:    *warmup,
				Seed:      *seed + 400 + int64(i),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "loadtest: edge:", err)
				return
			}
			mu.Lock()
			edgeReport.Latencies.Merge(&rep.Latencies)
			edgeReport.Issued += rep.Issued
			edgeReport.Succeeded += rep.Succeeded
			edgeReport.Failed += rep.Failed
			mu.Unlock()
		}(i, u)
	}
	wg.Wait()

	cloudReport, err := loadgen.Run(ctx, loadgen.Config{
		TargetURL: cloudURL,
		Arrivals:  workload.NewPaced(*rate*float64(*sites), 3),
		Duration:  *duration,
		Warmup:    *warmup,
		Seed:      *seed + 500,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest: cloud:", err)
		os.Exit(1)
	}

	rows := [][]interface{}{
		{"edge", edgeReport.Succeeded, edgeReport.Failed,
			edgeReport.MeanLatency() * 1000, edgeReport.Latencies.Median() * 1000,
			edgeReport.P95Latency() * 1000},
		{"cloud", cloudReport.Succeeded, cloudReport.Failed,
			cloudReport.MeanLatency() * 1000, cloudReport.Latencies.Median() * 1000,
			cloudReport.P95Latency() * 1000},
	}
	asciiplot.Table(os.Stdout, []string{"deployment", "ok", "failed", "mean (ms)", "median", "p95"}, rows)

	if edgeReport.MeanLatency() > cloudReport.MeanLatency() {
		fmt.Println("\nverdict: PERFORMANCE INVERSION — the cloud's mean latency beat the edge's.")
	} else {
		fmt.Println("\nverdict: the edge won on mean latency.")
	}
}

// serve starts an HTTP server on an ephemeral localhost port and returns
// its base URL and a shutdown function.
func serve(h http.Handler) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }
}
