// Command inversion is the analytic calculator from the paper's "rules
// of thumb" (§3): given a deployment shape and network latencies it
// reports whether performance inversion occurs, the cutoff utilizations
// under several models, and a capacity plan that avoids inversion.
//
// Usage:
//
//	inversion -k 5 -m 1 -mu 13 -edge-rtt 1 -cloud-rtt 25 [-rho 0.6]
//	          [-ca2 1] [-cb2 1] [-skew "10,3,2,1,1"]
//
// RTTs are milliseconds; rates are req/s.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/asciiplot"
	"repro/internal/theory"
)

func main() {
	k := flag.Int("k", 5, "number of edge sites / cloud servers ÷ m")
	m := flag.Int("m", 1, "servers per edge site")
	mu := flag.Float64("mu", 13, "per-server service rate (req/s)")
	edgeRTT := flag.Float64("edge-rtt", 1, "edge round-trip latency (ms)")
	cloudRTT := flag.Float64("cloud-rtt", 25, "cloud round-trip latency (ms)")
	rho := flag.Float64("rho", 0.6, "operating utilization for point checks")
	ca2 := flag.Float64("ca2", 1, "squared CoV of inter-arrival times")
	cb2 := flag.Float64("cb2", 1, "squared CoV of service times")
	skew := flag.String("skew", "", "comma-separated per-site rates (req/s) for Lemma 3.3")
	headroom := flag.Float64("headroom", 1.2, "capacity-plan overprovisioning factor")
	flag.Parse()

	dep := theory.Deployment{
		K:              *k,
		ServersPerSite: *m,
		Mu:             *mu,
		EdgeRTT:        *edgeRTT / 1000,
		CloudRTT:       *cloudRTT / 1000,
	}

	fmt.Printf("Deployment: k=%d sites × m=%d servers (cloud: %d servers), μ=%.3g req/s\n",
		dep.K, dep.ServersPerSite, dep.CloudServers(), dep.Mu)
	fmt.Printf("Network: edge=%.1fms cloud=%.1fms Δn=%.1fms\n\n",
		dep.EdgeRTT*1000, dep.CloudRTT*1000, dep.DeltaN()*1000)

	inv31, margin31 := dep.Lemma31(*rho, *rho)
	inv32, margin32 := dep.Lemma32(*rho, *rho, *ca2, *ca2/float64(dep.K), *cb2)
	rows := [][]interface{}{
		{"Lemma 3.1 (M/M, Whitt cond. wait)", verdict(inv31), margin31 * 1000},
		{"Lemma 3.2 (G/G, Allen–Cunneen)", verdict(inv32), margin32 * 1000},
	}
	asciiplot.Table(os.Stdout, []string{fmt.Sprintf("point check at ρ=%.2f", *rho), "verdict", "margin (ms)"}, rows)

	fmt.Println()
	cut := [][]interface{}{
		{"Corollary 3.1.1 (Whitt form)", dep.CutoffUtilization311()},
		{"Corollary 3.1.2 (k→∞ limit)", dep.CutoffUtilizationLimit312()},
		{"Exact M/M crossover", dep.CutoffUtilizationExactMM()},
		{"Allen–Cunneen crossover (given CoVs)", dep.CutoffUtilizationExactGG(*ca2, *ca2/float64(dep.K), *cb2)},
	}
	asciiplot.Table(os.Stdout, []string{"cutoff model", "ρ* (inversion above this)"}, cut)

	fmt.Printf("\nCorollary 3.1.3 hard cloud-RTT bound at ρ=%.2f: %.2f ms\n",
		*rho, dep.HardCloudRTTBound313(*rho, *rho)*1000)
	fmt.Printf("(a cloud closer than this beats even a 0 ms edge at that load)\n")

	if *skew != "" {
		lambdas, err := parseRates(*skew)
		if err != nil {
			fmt.Fprintln(os.Stderr, "inversion:", err)
			os.Exit(1)
		}
		if len(lambdas) != dep.K {
			fmt.Fprintf(os.Stderr, "inversion: -skew needs %d rates\n", dep.K)
			os.Exit(1)
		}
		inv, margin := dep.Lemma33(lambdas)
		fmt.Printf("\nLemma 3.3 with skewed rates %v: %s (margin %.2f ms)\n",
			lambdas, verdict(inv), margin*1000)
		var total float64
		for _, l := range lambdas {
			total += l
		}
		plan := theory.PlanEdgeCapacity(dep.DeltaN(), dep.Mu, lambdas, dep.CloudServers(), *headroom, 64)
		fmt.Printf("capacity plan (headroom %.2fx): per-site servers %v, edge total %d vs cloud %d (feasible=%v)\n",
			*headroom, plan.PerSite, plan.TotalEdge, plan.CloudTotal, plan.Feasible)
	}
}

func verdict(inverted bool) string {
	if inverted {
		return "INVERSION (cloud wins)"
	}
	return "edge wins"
}

func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
