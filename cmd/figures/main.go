// Command figures regenerates every table and figure of the paper's
// evaluation section from the edgebench simulator and analytic library.
//
// Usage:
//
//	figures [-fig all|2|3|4|5|6|7|8|9|10|three-tier|scaler|grid|validation|capacity|tail|cost|admission]
//	        [-duration seconds] [-seed n] [-csv dir]
//
// Output is an ASCII rendering of each figure plus the underlying data
// table; with -csv the raw series are also written as CSV files.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/admit"
	"repro/internal/app"
	"repro/internal/asciiplot"
	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/econ"
	"repro/internal/experiments"
	"repro/internal/netem"
	"repro/internal/stats"
	"repro/internal/theory"
	"repro/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (2..10, three-tier, scaler, grid, validation, capacity, tail, cost, admission, all)")
	duration := flag.Float64("duration", 600, "simulated seconds per sweep point")
	seed := flag.Int64("seed", 42, "random seed")
	csvDir := flag.String("csv", "", "directory to write CSV series into (optional)")
	workers := flag.Int("workers", 0, "worker pool size for sweep points and replications (0 = all CPUs, 1 = serial)")
	flag.Parse()

	if *workers > 0 {
		experiments.DefaultWorkers = *workers
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}

	run := func(name string, fn func()) {
		if *fig == "all" || *fig == name {
			fmt.Printf("\n================ Figure/Table %s ================\n", name)
			fn()
		}
	}

	run("2", func() { fig2(*seed) })
	run("3", func() { fig345("3", "typical-25ms", experiments.Mean, *duration, *seed, *csvDir) })
	run("4", func() { fig345("4", "distant-54ms", experiments.Mean, *duration, *seed, *csvDir) })
	run("5", func() { fig345("5", "distant-54ms", experiments.P95, *duration, *seed, *csvDir) })
	run("6", func() { fig6(*duration, *seed) })
	run("7", func() { fig7(*duration, *seed) })
	run("8", func() { fig8(*seed, *csvDir) })
	run("9", func() { fig910(*seed, true) })
	run("10", func() { fig910(*seed, false) })
	run("three-tier", func() { threeTier(*duration, *seed, *csvDir) })
	run("scaler", func() { scalerFrontier(*duration, *seed, *csvDir) })
	run("grid", func() { gridSurface(*duration, *seed, *csvDir) })
	run("validation", func() { validation(*duration, *seed) })
	run("capacity", func() { capacity() })
	run("tail", func() { tailAnalytic() })
	run("cost", func() { cost() })
	run("admission", func() { admissionCost(*duration, *seed, *csvDir) })
}

// admissionCost renders the rejection-vs-cost trade: one overloaded
// workload broadcast through the same edge hierarchy under
// progressively tighter entry admission, with rejected traffic priced
// by the econ penalty. Loose admission spends on queueing misery;
// tight admission converts it into explicit rejection cost — the view
// shows the p95 relief each rejected kilorequest buys.
func admissionCost(duration float64, seed int64, csvDir string) {
	const sites, offered = 5, 13
	pricing := econ.DefaultPricing()
	pricing.RejectPenalty = 0.0005
	fmt.Printf("Pricing: cloud $%.3f/server-hour, edge $%.3f/server-hour, rejection $%.4f/request\n",
		pricing.CloudPerServerHour, pricing.EdgePerServerHour, pricing.RejectPenalty)
	fmt.Printf("Workload: %d sites offering %g req/s each into 1 edge server/site "+
		"(spill to a pooled cloud at threshold 3)\n\n", sites, float64(offered))

	cloudPath := netem.CloudTypical
	topology := func(rate float64) cluster.Topology {
		// A reactive scaler on the edge makes shed traffic save real
		// capacity dollars, so the two cost components actually trade.
		scaler := autoscale.ReactiveSpec(autoscale.DefaultConfig(1, 4))
		topo := cluster.Topology{
			Name: "admit-frontier",
			Tiers: []cluster.Tier{
				{Name: "edge", Sites: sites, ServersPerSite: 1, Path: netem.EdgePath,
					Scaler: &scaler},
				{Name: "cloud", Sites: 1, ServersPerSite: sites, Path: cloudPath,
					Dispatch: cluster.CentralQueueDispatch},
			},
			Spills: []cluster.SpillEdge{{From: "edge", To: "cloud", Threshold: 3,
				DetourPath: &cloudPath}},
		}
		if rate > 0 {
			topo.Tiers[0].Admission = &admit.Spec{Policy: admit.TokenBucket, Rate: rate}
		}
		return topo
	}
	rates := []float64{0, 14, 12, 11, 10, 9, 8, 7} // 0 = admission off
	variants := make([]cluster.Variant, len(rates))
	for i, r := range rates {
		label := "off"
		if r > 0 {
			label = fmt.Sprintf("rate=%g", r)
		}
		variants[i] = cluster.Variant{Label: label, Topology: topology(r),
			Opts: cluster.Options{Seed: seed + 1, Pricing: &pricing, Summary: stats.Bounded}}
	}
	spec := cluster.GenSpec{Sites: sites, Duration: duration, PerSiteRate: offered, Seed: seed}
	results, err := cluster.RunBroadcast(cluster.Stream(spec), variants, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures: admission:", err)
		return
	}

	series := []asciiplot.Series{{Name: "total $ (capacity + penalty)"}, {Name: "capacity $"}}
	var rows [][]interface{}
	for i, res := range results {
		var rejCost float64
		for _, tier := range res.Tiers {
			rejCost += tier.RejectionCost
		}
		rejPct := 100 * float64(res.Rejected) / float64(res.Offered)
		rows = append(rows, []interface{}{
			variants[i].Label, int(res.Rejected), fmt.Sprintf("%.1f%%", rejPct),
			res.Result.P95Latency() * 1000,
			res.TotalCost - rejCost, rejCost, res.TotalCost,
		})
		// Chart against admitted fraction so "off" (100% admitted)
		// anchors the right edge and tightening admission walks left.
		x := 100 - rejPct
		series[0].X = append(series[0].X, x)
		series[0].Y = append(series[0].Y, res.TotalCost)
		series[1].X = append(series[1].X, x)
		series[1].Y = append(series[1].Y, res.TotalCost-rejCost)
	}
	asciiplot.Table(os.Stdout,
		[]string{"admission", "rejected", "reject %", "p95 (ms)", "capacity $", "penalty $", "total $"}, rows)
	fmt.Println()
	asciiplot.LineChart(os.Stdout, "Admission: total cost ($) vs admitted traffic (%)", series, 72, 16)

	if csvDir != "" {
		f, err := os.Create(filepath.Join(csvDir, "admission.csv"))
		if err == nil {
			defer f.Close()
			_ = asciiplot.WriteSeriesCSV(f, series)
		}
	}
}

// tailAnalytic prints the analytic tail-inversion extension: exact M/M
// cutoff utilizations for the mean and several quantiles across the
// paper's cloud distances. The paper derives only the mean comparison
// analytically (§4.3); this closes that gap.
func tailAnalytic() {
	mu := app.SaturationRate
	var rows [][]interface{}
	for _, sc := range netem.PaperScenarios() {
		d := theory.Deployment{
			K: 5, ServersPerSite: 1, Mu: mu,
			EdgeRTT: sc.Edge.MeanRTT(), CloudRTT: sc.Cloud.MeanRTT(),
		}
		rows = append(rows, []interface{}{
			sc.Name,
			d.CutoffUtilizationExactMM() * 100,
			d.TailCutoffUtilization(0.90) * 100,
			d.TailCutoffUtilization(0.95) * 100,
			d.TailCutoffUtilization(0.99) * 100,
		})
	}
	fmt.Println("Analytic inversion cutoffs under the exact M/M model (% utilization).")
	fmt.Println("Tails invert before means at every distance — Figure 5's insight in closed form.")
	asciiplot.Table(os.Stdout,
		[]string{"cloud", "mean ρ* (%)", "p90 ρ* (%)", "p95 ρ* (%)", "p99 ρ* (%)"}, rows)
	fmt.Println("\nNote: M/M variability (SCV 1) places these cutoffs well below the")
	fmt.Println("calibrated simulator's Figure 7 values; the ordering and monotone")
	fmt.Println("trend with cloud RTT are the reproduced structure.")
}

// cost prints the §7 economics extension: what inversion-free edge
// capacity costs relative to the cloud.
func cost() {
	pricing := econ.DefaultPricing()
	fmt.Printf("Pricing: cloud $%.3f/server-hour, edge $%.3f/server-hour (1.5x premium)\n\n",
		pricing.CloudPerServerHour, pricing.EdgePerServerHour)
	var rows [][]interface{}
	for _, lambda := range []float64{50, 100, 500} {
		for _, k := range []int{5, 10, 25} {
			c := econ.Compare(lambda, k, app.SaturationRate, 0.024, pricing)
			rows = append(rows, []interface{}{
				lambda, k, c.CloudServers, c.EdgeServersPeak, c.EdgeServersNoInversion,
				fmt.Sprintf("%.2fx", c.PeakCostRatio),
				fmt.Sprintf("%.2fx", c.NoInversionCostRatio),
				fmt.Sprintf("%.3g", econ.BreakEvenEdgePremium(lambda, k, app.SaturationRate, 0.024)),
			})
		}
	}
	asciiplot.Table(os.Stdout,
		[]string{"λ (req/s)", "k", "cloud srv", "edge peak srv", "edge no-inv srv",
			"peak cost", "no-inv cost", "break-even premium"}, rows)
	fmt.Println("\nbreak-even premium: the edge/cloud price multiple at which the")
	fmt.Println("inversion-free edge costs the same as the cloud (values < 1 mean the")
	fmt.Println("edge must be cheaper per server-hour than the cloud to break even).")
}

// fig2 renders the taxi-trace per-cell load skew (paper Figure 2).
func fig2(seed int64) {
	spec := trace.DefaultTaxiSpec()
	spec.Seed = seed
	loads := trace.TaxiCellLoads(spec)
	boxes := trace.CellBoxPlots(loads)
	// Show the 12 busiest cells plus the 4 quietest, like the paper's
	// long-tail box plot.
	var strip []asciiplot.Box
	show := boxes
	if len(show) > 16 {
		show = append(append([]stats.BoxPlot{}, boxes[:12]...), boxes[len(boxes)-4:]...)
	}
	for _, b := range show {
		strip = append(strip, asciiplot.Box{Label: b.Label, Min: b.Min, Q1: b.Q1, Med: b.Median, Q3: b.Q3, Max: b.Max})
	}
	asciiplot.BoxStrips(os.Stdout, "Fig 2: per-cell vehicle load (busiest 12 + quietest 4 cells)", strip, 60)
	mean, max := loadSkew(loads)
	fmt.Printf("spatial skew: busiest/mean per step: mean=%.2f max=%.2f (uniform would be 1.0)\n", mean, max)
}

func loadSkew(loads []trace.CellLoad) (meanSkew, maxSkew float64) {
	if len(loads) == 0 || len(loads[0].Counts) == 0 {
		return 0, 0
	}
	steps := len(loads[0].Counts)
	var sum float64
	for t := 0; t < steps; t++ {
		var tot, max float64
		for _, l := range loads {
			c := float64(l.Counts[t])
			tot += c
			if c > max {
				max = c
			}
		}
		mean := tot / float64(len(loads))
		if mean <= 0 {
			continue
		}
		s := max / mean
		sum += s
		if s > maxSkew {
			maxSkew = s
		}
	}
	return sum / float64(steps), maxSkew
}

// fig345 renders the rate-sweep latency comparisons (Figures 3, 4, 5).
func fig345(name, scenario string, metric experiments.Metric, duration float64, seed int64, csvDir string) {
	res, err := experiments.RunFig3(scenario, duration, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	pick := func(p experiments.SweepPoint, edge bool) float64 {
		if metric == experiments.P95 {
			if edge {
				return p.EdgeP95 * 1000
			}
			return p.CloudP95 * 1000
		}
		if edge {
			return p.EdgeMean * 1000
		}
		return p.CloudMean * 1000
	}
	series := []asciiplot.Series{
		{Name: "edge, 1 server"}, {Name: "edge, 2 servers"},
		{Name: "cloud, 5 servers"}, {Name: "cloud, 10 servers"},
	}
	for _, p := range res.OneServer.Points {
		series[0].X = append(series[0].X, p.RatePerServer)
		series[0].Y = append(series[0].Y, pick(p, true))
		series[2].X = append(series[2].X, p.RatePerServer)
		series[2].Y = append(series[2].Y, pick(p, false))
	}
	for _, p := range res.TwoServer.Points {
		series[1].X = append(series[1].X, p.RatePerServer)
		series[1].Y = append(series[1].Y, pick(p, true))
		series[3].X = append(series[3].X, p.RatePerServer)
		series[3].Y = append(series[3].Y, pick(p, false))
	}
	title := fmt.Sprintf("Fig %s: %s response time (ms) vs req/server/s — %s (Δn=%.0fms)",
		name, metric, scenario, res.Scenario.DeltaN()*1000)
	asciiplot.LineChart(os.Stdout, title, series, 72, 20)

	var rows [][]interface{}
	for i, p := range res.OneServer.Points {
		p2 := res.TwoServer.Points[i]
		rows = append(rows, []interface{}{
			p.RatePerServer, pick(p, true), pick(p2, true), pick(p, false), pick(p2, false),
		})
	}
	asciiplot.Table(os.Stdout,
		[]string{"req/s/srv", "edge1 (ms)", "edge2 (ms)", "cloud5 (ms)", "cloud10 (ms)"}, rows)

	for _, m := range []experiments.Metric{experiments.Mean, experiments.P95} {
		if rate, util, ok := res.OneServer.Crossover(m); ok {
			fmt.Printf("crossover (%s, 1 srv/site): %.1f req/s (util %.0f%%)\n", m, rate, util*100)
		} else {
			fmt.Printf("crossover (%s, 1 srv/site): none below saturation\n", m)
		}
		if rate, util, ok := res.TwoServer.Crossover(m); ok {
			fmt.Printf("crossover (%s, 2 srv/site): %.1f req/s (util %.0f%%)\n", m, rate, util*100)
		} else {
			fmt.Printf("crossover (%s, 2 srv/site): none below saturation\n", m)
		}
	}

	if csvDir != "" {
		f, err := os.Create(filepath.Join(csvDir, "fig"+name+".csv"))
		if err == nil {
			defer f.Close()
			_ = asciiplot.WriteSeriesCSV(f, series)
		}
	}
}

// threeTier renders the new hierarchy figure: four capacity-matched
// deployment shapes (pure edge, pure cloud, two-tier overflow, and the
// edge→regional→cloud chain) across the paper's rate axis.
func threeTier(duration float64, seed int64, csvDir string) {
	res, err := experiments.RunFigThreeTier(duration, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	series := []asciiplot.Series{
		{Name: "edge (5x2)"}, {Name: "cloud (10)"},
		{Name: "edge+overflow (5+5)"}, {Name: "edge+regional+cloud (5+2+3)"},
	}
	for _, p := range res.Points {
		for i, v := range []float64{p.EdgeMean, p.CloudMean, p.OverflowMean, p.ChainMean} {
			series[i].X = append(series[i].X, p.RatePerServer)
			series[i].Y = append(series[i].Y, v*1000)
		}
	}
	asciiplot.LineChart(os.Stdout,
		"Three-tier hierarchy: mean response time (ms) vs req/server/s, 10 servers per shape",
		series, 72, 20)

	var rows [][]interface{}
	for _, p := range res.Points {
		rows = append(rows, []interface{}{
			p.RatePerServer,
			p.EdgeMean * 1000, p.CloudMean * 1000, p.OverflowMean * 1000, p.ChainMean * 1000,
			p.EdgeP95 * 1000, p.ChainP95 * 1000,
			100 * p.OverflowSpill, 100 * p.ChainSpillReg, 100 * p.ChainSpillCld,
		})
	}
	asciiplot.Table(os.Stdout, []string{
		"req/s/srv", "edge", "cloud", "overflow", "chain",
		"edge p95", "chain p95", "ovfl %", "chain->reg %", "reg->cld %",
	}, rows)

	if csvDir != "" {
		f, err := os.Create(filepath.Join(csvDir, "figthreetier.csv"))
		if err == nil {
			defer f.Close()
			_ = asciiplot.WriteSeriesCSV(f, series)
		}
	}
}

// scalerFrontier renders the latency-vs-cost frontier of the scaler
// policy comparison: every policy (reactive thresholds, predictive ×
// forecaster) drives the same NHPP diurnal workload through the same
// edge+cloud deployment, and each lands at one (cost, latency) point.
// Pareto-optimal policies — no rival is both cheaper and faster — are
// marked; the rest pay more, wait longer, or both.
func scalerFrontier(duration float64, seed int64, csvDir string) {
	res, err := experiments.RunScalerComparison(experiments.ScalerComparisonConfig{
		Workload: experiments.ScalerWorkloadNHPP,
		Duration: duration,
		Seed:     seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	rows := append([]experiments.ScalerComparisonRow(nil), res.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].CostPerRequest < rows[j].CostPerRequest })
	// Weakly dominated = some rival is no worse on both axes and
	// strictly better on at least one.
	pareto := func(i int) bool {
		for j := range rows {
			if j == i {
				continue
			}
			if rows[j].CostPerRequest <= rows[i].CostPerRequest &&
				rows[j].Mean <= rows[i].Mean &&
				(rows[j].CostPerRequest < rows[i].CostPerRequest ||
					rows[j].Mean < rows[i].Mean) {
				return false
			}
		}
		return true
	}

	frontier := asciiplot.Series{Name: "policies (cost asc)"}
	var out [][]interface{}
	for i, r := range rows {
		edge := r.Tiers[0]
		mark := ""
		if pareto(i) {
			mark = "*"
		}
		frontier.X = append(frontier.X, r.CostPerRequest*1000)
		frontier.Y = append(frontier.Y, r.Mean*1000)
		out = append(out, []interface{}{
			r.Policy + mark, r.Mean * 1000, r.P95 * 1000,
			edge.PeakServers, edge.ScaleUps + edge.ScaleDowns,
			edge.ServerSeconds, r.TotalCost, r.CostPerRequest * 1000,
		})
	}
	asciiplot.LineChart(os.Stdout,
		"Scaler frontier: mean latency (ms) vs cost per 1000 requests ($), NHPP diurnal workload",
		[]asciiplot.Series{frontier}, 72, 18)
	asciiplot.Table(os.Stdout, []string{
		"policy", "mean (ms)", "p95 (ms)", "peak srv", "actions",
		"server-sec", "total $", "$/kreq",
	}, out)
	fmt.Println("* = on the latency-cost frontier (no policy is both cheaper and faster)")

	if csvDir != "" {
		f, err := os.Create(filepath.Join(csvDir, "figscaler.csv"))
		if err == nil {
			defer f.Close()
			_ = asciiplot.WriteSeriesCSV(f, []asciiplot.Series{frontier})
		}
	}
}

// gridSurface renders the crossover grid: the rate × budget × depth
// surface of hierarchy-vs-pooled-cloud latency, its per-column
// inversion points, and the "which depth delays inversion longest?"
// answer per budget. One broadcast generation pass feeds every cell
// at a given rate (see experiments.RunGrid).
func gridSurface(duration float64, seed int64, csvDir string) {
	cfg := experiments.GridConfig{
		Sites:    5,
		Rates:    []float64{6, 12, 18, 21, 24},
		Budgets:  []int{10, 15},
		Depths:   []int{1, 2, 3},
		Duration: duration,
		Seed:     seed,
	}
	res, err := experiments.RunGrid(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	// Heatmap of the surface itself: hierarchy mean minus pooled mean,
	// in ms — dark cells are where the hierarchy has inverted.
	var rows []string
	var values [][]float64
	var series []asciiplot.Series
	for _, b := range cfg.Budgets {
		for _, d := range cfg.Depths {
			rows = append(rows, fmt.Sprintf("b%d d%d", b, d))
			s := asciiplot.Series{Name: fmt.Sprintf("b%d-d%d", b, d)}
			var vs []float64
			for _, rate := range cfg.Rates {
				diff := (res.Cell(rate, b, d).Mean - res.Baseline(rate, b).Mean) * 1000
				vs = append(vs, diff)
				s.X = append(s.X, rate)
				s.Y = append(s.Y, res.Cell(rate, b, d).Mean*1000)
			}
			values = append(values, vs)
			series = append(series, s)
		}
	}
	cols := make([]string, len(cfg.Rates))
	for i, r := range cfg.Rates {
		cols[i] = fmt.Sprintf("%g", r)
	}
	asciiplot.Heatmap(os.Stdout,
		"Crossover grid: hierarchy mean - pooled-cloud mean (ms) vs per-site req/s",
		rows, cols, values)

	var out [][]interface{}
	for _, c := range res.Crossovers {
		cross := "none in range"
		switch {
		case c.AtFloor:
			cross = "inverted at floor"
		case !math.IsNaN(c.Crossover):
			cross = fmt.Sprintf("%.1f req/s", c.Crossover)
		}
		cell := res.Cell(cfg.Rates[len(cfg.Rates)-1], c.Budget, c.Depth)
		out = append(out, []interface{}{
			c.Budget, c.Depth, cross, cell.Mean * 1000, cell.Spilled,
		})
	}
	asciiplot.Table(os.Stdout,
		[]string{"budget", "depth", "inversion at", "mean @max rate (ms)", "spilled"}, out)
	for _, b := range cfg.Budgets {
		if d, at, ok := res.BestDepth(b); ok {
			how := "past the swept range"
			if !math.IsInf(at, 1) {
				how = fmt.Sprintf("to %.1f req/s", at)
			}
			fmt.Printf("budget %d: depth %d delays inversion longest (%s)\n", b, d, how)
		}
	}

	if csvDir != "" {
		f, err := os.Create(filepath.Join(csvDir, "figgrid.csv"))
		if err == nil {
			defer f.Close()
			_ = asciiplot.WriteSeriesCSV(f, series)
		}
	}
}

// fig6 renders the latency distributions at 10 req/server/s (Figure 6).
func fig6(duration float64, seed int64) {
	scenarios := experiments.RunFig6(duration, seed)
	var strip []asciiplot.Box
	var rows [][]interface{}
	for _, s := range scenarios {
		b := s.Box
		strip = append(strip, asciiplot.Box{
			Label: b.Label,
			Min:   b.Min * 1000, Q1: b.Q1 * 1000, Med: b.Median * 1000,
			Q3: b.Q3 * 1000, Max: b.UpperFence * 1000,
		})
		rows = append(rows, []interface{}{
			s.Label, b.Mean * 1000, b.Median * 1000,
			s.Summary.Quantile(0.95) * 1000, s.Summary.Quantile(0.99) * 1000, s.Summary.CoV,
		})
	}
	asciiplot.BoxStrips(os.Stdout, "Fig 6: response-time distribution (ms) at 10 req/server/s, distant cloud", strip, 60)
	asciiplot.Table(os.Stdout, []string{"scenario", "mean", "median", "p95", "p99", "CoV"}, rows)
}

// fig7 renders cutoff utilizations against cloud RTT (Figure 7).
func fig7(duration float64, seed int64) {
	points := experiments.RunFig7(duration, seed)
	var rows [][]interface{}
	for _, p := range points {
		meanPct := p.MeanCutoff * 100
		p95Pct := p.P95Cutoff * 100
		bar := func(pct float64) string {
			n := int(pct / 2)
			if n < 0 {
				n = 0
			}
			return strings.Repeat("#", n)
		}
		fmt.Printf("%-24s mean %5.1f%% |%s\n", p.Scenario, meanPct, bar(meanPct))
		fmt.Printf("%-24s p95  %5.1f%% |%s\n", "", p95Pct, bar(p95Pct))
		rows = append(rows, []interface{}{p.Scenario, p.CloudRTTms, meanPct, p95Pct})
	}
	asciiplot.Table(os.Stdout, []string{"cloud", "RTT (ms)", "mean cutoff (%)", "p95 cutoff (%)"}, rows)
}

// fig8 renders the synthetic Azure per-site workload (Figure 8).
func fig8(seed int64, csvDir string) {
	spec := trace.DefaultAzureSpec()
	spec.Seed = seed
	series := trace.GenerateAzure(spec)
	var plot []asciiplot.Series
	for i, s := range series {
		ps := asciiplot.Series{Name: fmt.Sprintf("Edge %d", i+1)}
		for b, c := range s.Counts {
			ps.X = append(ps.X, float64(b+1))
			ps.Y = append(ps.Y, c)
		}
		plot = append(plot, ps)
	}
	asciiplot.LineChart(os.Stdout, "Fig 8: per-site requests/minute (synthetic Azure trace)", plot, 72, 18)
	meanSkew, maxSkew := trace.SkewStats(series)
	fmt.Printf("cross-site skew (busiest/mean): mean=%.2f max=%.2f\n", meanSkew, maxSkew)
	if csvDir != "" {
		f, err := os.Create(filepath.Join(csvDir, "fig8.csv"))
		if err == nil {
			defer f.Close()
			_ = trace.WriteSiteSeriesCSV(f, series)
		}
	}
}

// fig910 renders the Azure replay timeline (Figure 9) or per-site box
// plots (Figure 10).
func fig910(seed int64, timeline bool) {
	spec := trace.DefaultAzureSpec()
	spec.Seed = seed
	res := experiments.RunAzureReplay(spec, 1.0, seed)
	if timeline {
		var edge, cloud asciiplot.Series
		edge.Name, cloud.Name = "Edge servers", "Cloud servers"
		n := res.EdgeTimeline.NumBins()
		if m := res.CloudTimeline.NumBins(); m < n {
			n = m
		}
		for i := 0; i < n; i++ {
			t := res.EdgeTimeline.BinTime(i) / 60
			edge.X = append(edge.X, t)
			edge.Y = append(edge.Y, res.EdgeTimeline.BinMean(i)*1000)
			cloud.X = append(cloud.X, t)
			cloud.Y = append(cloud.Y, res.CloudTimeline.BinMean(i)*1000)
		}
		asciiplot.LineChart(os.Stdout, "Fig 9: mean response time (ms) per minute, Azure trace replay (Δn≈25ms)",
			[]asciiplot.Series{edge, cloud}, 72, 18)
		fmt.Printf("overall: edge mean=%.1fms cloud mean=%.1fms; edge p95=%.1fms cloud p95=%.1fms\n",
			res.EdgeResult.MeanLatency()*1000, res.CloudResult.MeanLatency()*1000,
			res.EdgeResult.P95Latency()*1000, res.CloudResult.P95Latency()*1000)
		return
	}
	var strip []asciiplot.Box
	var rows [][]interface{}
	for _, b := range append(res.EdgeBoxes, res.CloudBox) {
		strip = append(strip, asciiplot.Box{
			Label: b.Label,
			Min:   b.Min * 1000, Q1: b.Q1 * 1000, Med: b.Median * 1000,
			Q3: b.Q3 * 1000, Max: b.UpperFence * 1000,
		})
		rows = append(rows, []interface{}{b.Label, b.N, b.Mean * 1000, b.Median * 1000, b.Q3 * 1000, b.UpperFence * 1000})
	}
	asciiplot.BoxStrips(os.Stdout, "Fig 10: per-site response time (ms) under the Azure workload", strip, 60)
	asciiplot.Table(os.Stdout, []string{"server", "n", "mean", "median", "q3", "whisker"}, rows)
}

// validation prints the §4.2 analytic-vs-measured comparison.
func validation(duration float64, seed int64) {
	rows := experiments.RunValidation(duration, seed)
	var out [][]interface{}
	for _, r := range rows {
		out = append(out, []interface{}{
			r.Label, r.DeltaNms, r.MeasuredRate, r.MeasuredUtil,
			r.PaperCutoff, r.ExactMMCutoff, r.CalibratedCutoff,
			fmt.Sprintf("%+.1f%%", r.RelErrCalibrated*100),
		})
	}
	asciiplot.Table(os.Stdout,
		[]string{"setup", "Δn (ms)", "meas rate", "meas ρ*", "paper ρ*", "exact-MM ρ*", "calibrated ρ*", "cal err"},
		out)
	fmt.Println("\npaper ρ* = Corollary 3.1.1 at the paper's μ convention (see EXPERIMENTS.md);")
	fmt.Println("calibrated ρ* = Allen–Cunneen crossover at the measured arrival/service SCVs.")
}

// capacity prints the §5.2 provisioning comparison.
func capacity() {
	rows := experiments.RunCapacityTable(
		[]float64{10, 50, 100, 500, 1000},
		[]int{5, 10, 50, 100},
	)
	var out [][]interface{}
	for _, r := range rows {
		out = append(out, []interface{}{
			r.Lambda, r.K, r.CloudCapacity, r.EdgeCapacity,
			fmt.Sprintf("%.3fx", r.Overhead), r.CloudServers, r.EdgeServers,
		})
	}
	asciiplot.Table(os.Stdout,
		[]string{"λ (req/s)", "k sites", "C_cloud", "C_edge", "overhead", "cloud srv", "edge srv"},
		out)
}
