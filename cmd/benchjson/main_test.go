package main

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
)

// sample is captured `go test -bench -benchmem` output from a
// GOMAXPROCS=1 machine (no -N proc suffix on names), including the
// header block, a custom metric column, PASS/ok trailer noise, and two
// concatenated runs (the second header block wins).
const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShardedReplay1M/single-engine         	       1	110638376 ns/op	    99836 requests	 7963400 B/op	   49698 allocs/op
BenchmarkShardedReplay1M/shards-1              	       2	112021780 ns/op	    99836 requests	 7523904 B/op	   46579 allocs/op
BenchmarkShardedReplay1M/shards-2              	       2	110524199 ns/op	    99836 requests	15812120 B/op	   98700 allocs/op
BenchmarkShardedReplay1M/shards-4              	       2	 96147644 ns/op	    99836 requests	  413616 B/op	    2555 allocs/op
BenchmarkShardedReplay1M/shards-8              	       2	 89146287 ns/op	    99836 requests	  485128 B/op	    3028 allocs/op
PASS
ok  	repro	1.724s
goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineBackends/calendar-queue         	       1	241615111 ns/op	   41832 allocs/op
BenchmarkEngineBackends/binary-heap            	       1	243759671 ns/op	     739 allocs/op
PASS
ok  	repro	0.248s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if want := "Intel(R) Xeon(R) Processor @ 2.10GHz"; rep.CPU != want {
		t.Errorf("cpu = %q, want %q", rep.CPU, want)
	}
	if len(rep.Benchmarks) != 7 {
		t.Fatalf("parsed %d benchmarks, want 7", len(rep.Benchmarks))
	}

	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkShardedReplay1M/single-engine" {
		t.Errorf("name = %q (shards-N digits must survive on GOMAXPROCS=1 output)", b.Name)
	}
	if b.Runs != 1 || b.NsPerOp != 110638376 || b.BytesPerOp != 7963400 || b.AllocsPerOp != 49698 {
		t.Errorf("values = %+v", b)
	}
	if got := b.Metrics["requests"]; got != 99836 {
		t.Errorf("requests metric = %v, want 99836", got)
	}

	last := rep.Benchmarks[6]
	if last.Name != "BenchmarkEngineBackends/binary-heap" || last.AllocsPerOp != 739 {
		t.Errorf("last = %+v", last)
	}
	if last.BytesPerOp != 0 {
		t.Errorf("bytes_per_op = %v, want 0 (column absent)", last.BytesPerOp)
	}
}

func TestParseBenchShardScaling(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	pts := rep.ShardScaling["BenchmarkShardedReplay1M"]
	if len(pts) != 4 {
		t.Fatalf("scaling curve has %d points, want 4: %+v", len(pts), pts)
	}
	for i, wantShards := range []int{1, 2, 4, 8} {
		if pts[i].Shards != wantShards {
			t.Errorf("point %d shards = %d, want %d", i, pts[i].Shards, wantShards)
		}
	}
	if pts[0].Speedup != 1.0 {
		t.Errorf("shards-1 speedup = %v, want 1.0", pts[0].Speedup)
	}
	want := 112021780.0 / 89146287.0
	if math.Abs(pts[3].Speedup-want) > 1e-12 {
		t.Errorf("shards-8 speedup = %v, want %v", pts[3].Speedup, want)
	}
	// single-engine and EngineBackends sub-benches are not shards-N and
	// must not produce curves.
	if len(rep.ShardScaling) != 1 {
		t.Errorf("families = %v, want only BenchmarkShardedReplay1M", rep.ShardScaling)
	}
}

// TestParseBenchProcSuffix feeds GOMAXPROCS=4 output, where every name
// carries a uniform -4 tail that must be stripped without eating the
// shards-N digits underneath it.
func TestParseBenchProcSuffix(t *testing.T) {
	in := `BenchmarkShardedReplay1M/single-engine-4 	 2	 400 ns/op
BenchmarkShardedReplay1M/shards-1-4 	 2	 400 ns/op
BenchmarkShardedReplay1M/shards-4-4 	 2	 100 ns/op
`
	rep, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if got := rep.Benchmarks[0].Name; got != "BenchmarkShardedReplay1M/single-engine" {
		t.Errorf("name = %q, want proc suffix stripped", got)
	}
	pts := rep.ShardScaling["BenchmarkShardedReplay1M"]
	if len(pts) != 2 || pts[1].Shards != 4 || pts[1].Speedup != 4.0 {
		t.Fatalf("scaling = %+v, want shards {1,4} with speedup 4.0", pts)
	}
}

func TestParseBenchDuplicatesAverage(t *testing.T) {
	in := `BenchmarkX/shards-1-4 	 10	 200 ns/op
BenchmarkX/shards-1-4 	 10	 100 ns/op
BenchmarkX/shards-2-4 	 10	  50 ns/op
`
	rep, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3 (duplicates kept as entries)", len(rep.Benchmarks))
	}
	pts := rep.ShardScaling["BenchmarkX"]
	if len(pts) != 2 || pts[0].NsPerOp != 150 {
		t.Fatalf("scaling = %+v, want shards-1 averaged to 150", pts)
	}
	if pts[1].Speedup != 3.0 {
		t.Errorf("shards-2 speedup = %v, want 3.0 (150/50)", pts[1].Speedup)
	}
}

func TestParseBenchErrors(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("no result lines: want error")
	}
	if _, err := parseBench(strings.NewReader("BenchmarkY-4 1 oops ns/op\n")); err == nil {
		t.Error("bad value: want error")
	}
}

// mkReport builds a Report with one entry per name -> ns/op pair.
func mkReport(ns map[string]float64) Report {
	var rep Report
	for name, v := range ns {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name, Runs: 1, NsPerOp: v})
	}
	return rep
}

func TestDiffReports(t *testing.T) {
	base := mkReport(map[string]float64{
		"BenchmarkA":    100,
		"BenchmarkB":    100,
		"BenchmarkC":    100,
		"BenchmarkGone": 50,
	})
	cur := mkReport(map[string]float64{
		"BenchmarkA":   105, // +5%: within tolerance
		"BenchmarkB":   120, // +20%: regression
		"BenchmarkC":   80,  // improvement
		"BenchmarkNew": 7,   // no baseline: skipped
	})
	lines := diffReports(cur, base, 0.10)
	if len(lines) != 3 {
		t.Fatalf("diffed %d benchmarks, want 3 (shared names only): %+v", len(lines), lines)
	}
	byName := map[string]diffLine{}
	for _, l := range lines {
		byName[l.name] = l
	}
	if l := byName["BenchmarkA"]; l.regressed || math.Abs(l.delta-0.05) > 1e-12 {
		t.Errorf("A = %+v, want +5%% within tolerance", l)
	}
	if l := byName["BenchmarkB"]; !l.regressed || math.Abs(l.delta-0.20) > 1e-12 {
		t.Errorf("B = %+v, want +20%% regression", l)
	}
	if l := byName["BenchmarkC"]; l.regressed || l.delta >= 0 {
		t.Errorf("C = %+v, want improvement", l)
	}
	// Exactly at tolerance is not a regression (the gate is strict >).
	at := diffReports(mkReport(map[string]float64{"BenchmarkA": 110}),
		mkReport(map[string]float64{"BenchmarkA": 100}), 0.10)
	if len(at) != 1 || at[0].regressed {
		t.Errorf("at-tolerance = %+v, want no regression at exactly +10%%", at)
	}
}

// TestDiffReportsAveragesDuplicates: duplicate result lines (repeated
// -count runs) average before comparison, matching the scaling fold.
func TestDiffReportsAveragesDuplicates(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 90},
		{Name: "BenchmarkA", NsPerOp: 110},
	}}
	cur := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 130},
		{Name: "BenchmarkA", NsPerOp: 90},
	}}
	lines := diffReports(cur, base, 0.10)
	if len(lines) != 1 || lines[0].regressed || math.Abs(lines[0].delta-0.10) > 1e-12 {
		t.Fatalf("lines = %+v, want one +10%% non-regression from averaged 100 -> 110", lines)
	}
}

func TestRunDiff(t *testing.T) {
	basePath := t.TempDir() + "/base.json"
	base := mkReport(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100})
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	regressed, err := runDiff(&buf, mkReport(map[string]float64{"BenchmarkA": 104, "BenchmarkB": 99}), basePath, 0.10)
	if err != nil || regressed {
		t.Fatalf("clean diff: regressed=%v err=%v", regressed, err)
	}
	if out := buf.String(); !strings.Contains(out, "BenchmarkA") || strings.Contains(out, "REGRESSION") {
		t.Errorf("clean diff output:\n%s", out)
	}

	buf.Reset()
	regressed, err = runDiff(&buf, mkReport(map[string]float64{"BenchmarkA": 150}), basePath, 0.10)
	if err != nil || !regressed {
		t.Fatalf("regressing diff: regressed=%v err=%v", regressed, err)
	}
	if out := buf.String(); !strings.Contains(out, "REGRESSION") {
		t.Errorf("regressing diff output lacks the marker:\n%s", out)
	}

	if _, err := runDiff(&buf, mkReport(map[string]float64{"BenchmarkZ": 1}), basePath, 0.10); err == nil {
		t.Error("disjoint benchmark sets: want an error, not a silent pass")
	}
	if _, err := runDiff(&buf, mkReport(map[string]float64{"BenchmarkA": 1}), basePath+".missing", 0.10); err == nil {
		t.Error("missing baseline file: want an error")
	}
}

func TestParseBenchBroadcastSpeedup(t *testing.T) {
	const in = `goos: linux
BenchmarkBroadcastFanout/per-row     	       1	 400000000 ns/op	    20072 requests
BenchmarkBroadcastFanout/broadcast   	       1	 100000000 ns/op	    20072 requests
BenchmarkBroadcastFanout/per-row     	       1	 440000000 ns/op	    20072 requests
BenchmarkBroadcastFanout/broadcast   	       1	 110000000 ns/op	    20072 requests
BenchmarkOther/per-row               	       1	 100000000 ns/op
PASS
`
	rep, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	got, ok := rep.BroadcastSpeedup["BenchmarkBroadcastFanout"]
	if !ok {
		t.Fatalf("no broadcast speedup folded: %+v", rep.BroadcastSpeedup)
	}
	// Duplicates average per side: 420ms / 105ms = 4x.
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("speedup = %v, want 4", got)
	}
	// A family with only one side of the pair has no ratio.
	if _, ok := rep.BroadcastSpeedup["BenchmarkOther"]; ok {
		t.Error("half a per-row/broadcast pair should not fold")
	}
	// The fold must survive the JSON round trip the artifact takes.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.BroadcastSpeedup["BenchmarkBroadcastFanout"]-4) > 1e-9 {
		t.Errorf("speedup lost in round trip: %+v", back.BroadcastSpeedup)
	}
}

func TestParseBenchGenSpeedup(t *testing.T) {
	const in = `goos: linux
BenchmarkParallelGen/gen-serial     	       1	 600000000 ns/op	    30000 requests
BenchmarkParallelGen/gen-parallel   	       1	 200000000 ns/op	    30000 requests
BenchmarkParallelGen/gen-serial     	       1	 660000000 ns/op	    30000 requests
BenchmarkParallelGen/gen-parallel   	       1	 220000000 ns/op	    30000 requests
BenchmarkLonely/gen-parallel        	       1	 100000000 ns/op
PASS
`
	rep, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	got, ok := rep.GenSpeedup["BenchmarkParallelGen"]
	if !ok {
		t.Fatalf("no gen speedup folded: %+v", rep.GenSpeedup)
	}
	// Duplicates average per side: 630ms / 210ms = 3x.
	if math.Abs(got-3) > 1e-9 {
		t.Errorf("speedup = %v, want 3", got)
	}
	if _, ok := rep.GenSpeedup["BenchmarkLonely"]; ok {
		t.Error("half a gen-serial/gen-parallel pair should not fold")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.GenSpeedup["BenchmarkParallelGen"]-3) > 1e-9 {
		t.Errorf("speedup lost in round trip: %+v", back.GenSpeedup)
	}
}
