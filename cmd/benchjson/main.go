// Command benchjson converts `go test -bench` text output into a JSON
// perf artifact (BENCH_PR6.json and successors), so CI can archive one
// machine-readable file per run and future changes can diff ns/op,
// B/op, allocs/op and custom metrics across commits. Sub-benchmarks
// named shards-N are additionally folded into a shard-count scaling
// curve with speedups relative to shards-1, per-row/broadcast
// sub-bench pairs into a broadcast-fanout speedup (per-row ns/op over
// broadcast ns/op — the factor one shared generation pass saves), and
// gen-serial/gen-parallel pairs into a parallel-generation speedup
// (serial ns/op over parallel ns/op).
//
//	go test -bench 'ShardedReplay1M' -benchmem . | benchjson -o BENCH_PR6.json
//
// Multiple bench runs may be concatenated on the input; later header
// lines (goos/goarch/cpu/pkg) win, and duplicate benchmark names are
// kept as separate entries (the scaling curve averages them).
//
// With -baseline, the run is additionally diffed against a prior
// artifact: every benchmark present in both reports prints its ns/op
// delta on stderr, and any regression beyond -tolerance (default 10%)
// fails the run with exit status 1 — the CI perf gate.
//
//	go test -bench . -benchmem . | benchjson -o BENCH_PR7.json -baseline BENCH_PR6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// ScalePoint is one shard count on a scaling curve.
type ScalePoint struct {
	Shards  int     `json:"shards"`
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is ns/op(shards-1) / ns/op(shards-N): >1 means the
	// sharded replay beat the one-shard run of the same pipeline.
	Speedup float64 `json:"speedup_vs_shards_1,omitempty"`
}

// Report is the artifact schema.
type Report struct {
	Generated    string                  `json:"generated"`
	Goos         string                  `json:"goos,omitempty"`
	Goarch       string                  `json:"goarch,omitempty"`
	CPU          string                  `json:"cpu,omitempty"`
	Pkg          string                  `json:"pkg,omitempty"`
	Benchmarks   []Benchmark             `json:"benchmarks"`
	ShardScaling map[string][]ScalePoint `json:"shard_scaling,omitempty"`
	// BroadcastSpeedup maps each family with per-row and broadcast
	// sub-benchmarks to ns/op(per-row) / ns/op(broadcast): the factor
	// saved by fanning one generation pass out to every variant engine
	// instead of re-deriving the trace per variant.
	BroadcastSpeedup map[string]float64 `json:"broadcast_speedup,omitempty"`
	// GenSpeedup maps each family with gen-serial and gen-parallel
	// sub-benchmarks to ns/op(gen-serial) / ns/op(gen-parallel): the
	// factor the parallel generation front-end wins over the serial
	// stream (~1.0 on a single-CPU runner, where the fan-out degrades
	// to the merge overhead alone).
	GenSpeedup map[string]float64 `json:"gen_speedup,omitempty"`
}

// procSuffix is the -GOMAXPROCS tail the bench runner appends to every
// result name when GOMAXPROCS > 1 (at 1 it is omitted, so names like
// shards-8 end in digits that are NOT a proc suffix); shardSub matches
// sub-benchmarks that form scaling curves.
var (
	procSuffix   = regexp.MustCompile(`-(\d+)$`)
	shardSub     = regexp.MustCompile(`^(.+)/shards-(\d+)$`)
	broadcastSub = regexp.MustCompile(`^(.+)/(per-row|broadcast)$`)
	genSub       = regexp.MustCompile(`^(.+)/(gen-serial|gen-parallel)$`)
)

// stripProcSuffix removes the -GOMAXPROCS tail from every name, but
// only when every name carries the same one — the only signature that
// distinguishes a proc suffix from trailing digits that belong to the
// benchmark's own name (shards-8, p99, …). A single-line input whose
// name happens to end in digits is misdetected, but a one-point input
// has no curve to lose.
func stripProcSuffix(benches []Benchmark) {
	suffix := ""
	for _, b := range benches {
		m := procSuffix.FindStringSubmatch(b.Name)
		if m == nil {
			return
		}
		if suffix == "" {
			suffix = m[1]
		} else if m[1] != suffix {
			return
		}
	}
	for i := range benches {
		benches[i].Name = strings.TrimSuffix(benches[i].Name, "-"+suffix)
	}
}

// parseBench reads `go test -bench` output into a Report (without the
// Generated stamp, which main adds).
func parseBench(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Runs: runs}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return rep, fmt.Errorf("benchjson: %q: bad value %q", fields[0], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("benchjson: no benchmark result lines on input")
	}
	stripProcSuffix(rep.Benchmarks)
	rep.ShardScaling = scaling(rep.Benchmarks)
	rep.BroadcastSpeedup = pairSpeedups(rep.Benchmarks, broadcastSub, "per-row", "broadcast")
	rep.GenSpeedup = pairSpeedups(rep.Benchmarks, genSub, "gen-serial", "gen-parallel")
	return rep, nil
}

// pairSpeedups folds slow/fast sub-benchmark pairs (matched by sub,
// whose second group names the side) into per-family speedups
// ns/op(slow) / ns/op(fast), averaging duplicates. Families missing
// either side are skipped: half a pair carries no ratio.
func pairSpeedups(benches []Benchmark, sub *regexp.Regexp, slow, fast string) map[string]float64 {
	type acc struct {
		sum float64
		n   int
	}
	families := map[string]map[string]*acc{}
	for _, b := range benches {
		m := sub.FindStringSubmatch(b.Name)
		if m == nil {
			continue
		}
		fam := families[m[1]]
		if fam == nil {
			fam = map[string]*acc{}
			families[m[1]] = fam
		}
		if fam[m[2]] == nil {
			fam[m[2]] = &acc{}
		}
		fam[m[2]].sum += b.NsPerOp
		fam[m[2]].n++
	}
	var out map[string]float64
	for name, fam := range families {
		s, f := fam[slow], fam[fast]
		if s == nil || f == nil || f.sum <= 0 {
			continue
		}
		if out == nil {
			out = map[string]float64{}
		}
		out[name] = (s.sum / float64(s.n)) / (f.sum / float64(f.n))
	}
	return out
}

// scaling folds shards-N sub-benchmarks into per-family curves,
// averaging duplicates and anchoring speedups at shards-1.
func scaling(benches []Benchmark) map[string][]ScalePoint {
	type acc struct {
		sum float64
		n   int
	}
	families := map[string]map[int]*acc{}
	for _, b := range benches {
		m := shardSub.FindStringSubmatch(b.Name)
		if m == nil {
			continue
		}
		shards, _ := strconv.Atoi(m[2])
		fam := families[m[1]]
		if fam == nil {
			fam = map[int]*acc{}
			families[m[1]] = fam
		}
		if fam[shards] == nil {
			fam[shards] = &acc{}
		}
		fam[shards].sum += b.NsPerOp
		fam[shards].n++
	}
	if len(families) == 0 {
		return nil
	}
	out := map[string][]ScalePoint{}
	for name, fam := range families {
		var pts []ScalePoint
		for shards, a := range fam {
			pts = append(pts, ScalePoint{Shards: shards, NsPerOp: a.sum / float64(a.n)})
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Shards < pts[j].Shards })
		var base float64
		for _, p := range pts {
			if p.Shards == 1 {
				base = p.NsPerOp
			}
		}
		if base > 0 {
			for i := range pts {
				pts[i].Speedup = base / pts[i].NsPerOp
			}
		}
		out[name] = pts
	}
	return out
}

// diffLine is one benchmark's comparison against the baseline.
type diffLine struct {
	name      string
	base, cur float64 // ns/op
	delta     float64 // (cur-base)/base
	regressed bool
}

// diffReports compares ns/op for every benchmark name present in both
// reports (duplicates average, matching the scaling fold) and flags
// those whose slowdown exceeds tol. Benchmarks on only one side carry
// no signal about a regression and are skipped.
func diffReports(cur, base Report, tol float64) []diffLine {
	avg := func(benches []Benchmark) map[string]float64 {
		sum := map[string]float64{}
		n := map[string]int{}
		for _, b := range benches {
			sum[b.Name] += b.NsPerOp
			n[b.Name]++
		}
		for name := range sum {
			sum[name] /= float64(n[name])
		}
		return sum
	}
	baseNs, curNs := avg(base.Benchmarks), avg(cur.Benchmarks)
	var lines []diffLine
	for name, b := range baseNs {
		c, ok := curNs[name]
		if !ok || b <= 0 {
			continue
		}
		d := (c - b) / b
		lines = append(lines, diffLine{
			name: name, base: b, cur: c, delta: d,
			regressed: d > tol,
		})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	return lines
}

// runDiff loads the baseline artifact, prints the comparison to w, and
// reports whether any benchmark regressed beyond tol.
func runDiff(w io.Writer, cur Report, baselinePath string, tol float64) (bool, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("%s: %w", baselinePath, err)
	}
	lines := diffReports(cur, base, tol)
	if len(lines) == 0 {
		return false, fmt.Errorf("%s: no benchmark names in common with the current run", baselinePath)
	}
	regressed := false
	fmt.Fprintf(w, "benchjson: vs %s (tolerance %+.0f%%):\n", baselinePath, 100*tol)
	for _, l := range lines {
		mark := ""
		if l.regressed {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "  %-60s %14.0f -> %14.0f ns/op  %+7.1f%%%s\n",
			l.name, l.base, l.cur, 100*l.delta, mark)
	}
	return regressed, nil
}

func main() {
	inPath := flag.String("in", "-", "bench output to read (- for stdin)")
	outPath := flag.String("o", "-", "JSON artifact to write (- for stdout)")
	baseline := flag.String("baseline", "", "prior JSON artifact to diff against: print ns/op deltas on stderr "+
		"and exit 1 when any shared benchmark regresses beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.10, "with -baseline: fractional ns/op slowdown that counts as a regression")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	rep, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Generated = time.Now().UTC().Format(time.RFC3339)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *outPath == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		// The artifact is already written: a failed gate still leaves the
		// measurements on disk for the investigation.
		regressed, err := runDiff(os.Stderr, rep, *baseline, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed {
			fmt.Fprintln(os.Stderr, "benchjson: ns/op regression beyond tolerance")
			os.Exit(1)
		}
	}
}
