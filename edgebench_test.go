package edgebench_test

import (
	"math"
	"testing"

	edgebench "repro"
)

// TestPublicAPIQuickstart exercises the README's quickstart path through
// the re-exported root API only.
func TestPublicAPIQuickstart(t *testing.T) {
	model := edgebench.NewInferenceModel()
	dep := edgebench.Deployment{
		K: 5, ServersPerSite: 1, Mu: model.Mu(),
		EdgeRTT: 0.001, CloudRTT: 0.025,
	}
	cutoff := dep.CutoffUtilizationExactMM()
	if cutoff <= 0 || cutoff >= 1 {
		t.Fatalf("cutoff = %v, want interior", cutoff)
	}

	tr := edgebench.Generate(edgebench.GenSpec{
		Sites: 5, Duration: 200, PerSiteRate: 8, Model: model, Seed: 1,
	})
	sc, ok := edgebench.ScenarioByName("typical-25ms")
	if !ok {
		t.Fatal("scenario missing")
	}
	edge := edgebench.RunEdge(tr, edgebench.EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 20, Seed: 2,
	})
	cloud := edgebench.RunCloud(tr, edgebench.CloudConfig{
		Servers: 5, Path: sc.Cloud, Warmup: 20, Seed: 3,
	})
	if edge.EndToEnd.N() == 0 || cloud.EndToEnd.N() == 0 {
		t.Fatal("runs produced no measurements")
	}
	if edge.MeanLatency() <= sc.Edge.MeanRTT() {
		t.Error("edge latency should exceed its network RTT")
	}
}

func TestPublicAPITheoryHelpers(t *testing.T) {
	if w := edgebench.MM1Wait(0.5, 1); math.Abs(w-1) > 1e-12 {
		t.Errorf("MM1Wait = %v", w)
	}
	if c := edgebench.ErlangC(2, 1); math.Abs(c-1.0/3) > 1e-9 {
		t.Errorf("ErlangC = %v", c)
	}
	cloud, edge, overhead := edgebench.TwoSigmaCapacity(100, 5)
	if edge <= cloud || overhead <= 1 {
		t.Error("two-sigma capacities wrong")
	}
	if edgebench.SaturationRate != 13 {
		t.Error("saturation rate changed")
	}
}

func TestPublicAPIWorkloadHelpers(t *testing.T) {
	z := edgebench.ZipfPartition(5, 1)
	w := z.Weights(0)
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Error("Zipf weights should sum to 1")
	}
	u := edgebench.UniformPartition(4)
	if u.Sites() != 4 {
		t.Error("uniform partition sites wrong")
	}
	d := edgebench.FitDistToMeanSCV(2, 1.5)
	if math.Abs(d.Mean()-2) > 1e-9 {
		t.Error("FitDistToMeanSCV mean wrong")
	}
	p := edgebench.NewPoissonArrivals(7)
	if p.Rate() != 7 {
		t.Error("Poisson rate wrong")
	}
}

func TestPublicAPIAzure(t *testing.T) {
	spec := edgebench.DefaultAzureSpec()
	spec.Minutes = 3
	series := edgebench.GenerateAzure(spec)
	if len(series) != spec.Sites {
		t.Fatal("series count wrong")
	}
	procs := edgebench.ToArrivalProcesses(series, false)
	if len(procs) != spec.Sites {
		t.Fatal("process count wrong")
	}
}

func TestPublicAPIExtensions(t *testing.T) {
	// Tail analysis.
	q := edgebench.MMcWaitQuantile(5, 0.8, 13, 0.95)
	if q <= 0 {
		t.Error("p95 wait quantile should be positive at ρ=0.8")
	}
	if ccdf := edgebench.MMcWaitCCDF(5, 0.8, 13, q); math.Abs(ccdf-0.05) > 1e-9 {
		t.Errorf("CCDF(quantile) = %v, want 0.05", ccdf)
	}
	dep := edgebench.Deployment{K: 5, ServersPerSite: 1, Mu: 13, EdgeRTT: 0.001, CloudRTT: 0.054}
	if dep.TailCutoffUtilization(0.95) >= dep.CutoffUtilizationExactMM() {
		t.Error("tail cutoff should precede mean cutoff")
	}

	// Loss model.
	if p := edgebench.MMcKLossProbability(1, 5, 1.2); p <= 0 || p >= 1 {
		t.Errorf("loss probability %v outside (0,1)", p)
	}
	if tp := edgebench.EffectiveThroughput(5, 10, 200, 13); tp > 5*13*1.02 {
		t.Errorf("effective throughput %v exceeds capacity", tp)
	}

	// Economics.
	c := edgebench.CompareCost(100, 5, 13, 0.024, edgebench.DefaultPricing())
	if c.NoInversionCostRatio <= 1 {
		t.Error("edge should cost more than the cloud at a 1.5x premium")
	}
	if be := edgebench.BreakEvenEdgePremium(100, 5, 13, 0.024); be <= 0 || be > 1 {
		t.Errorf("break-even premium %v outside (0,1]", be)
	}
	if edgebench.AutoscaledCost(3600, edgebench.DefaultPricing()) <= 0 {
		t.Error("autoscaled cost should be positive")
	}

	// Forecasting.
	f := edgebench.NewHoltForecaster(0.5, 0.5)
	for i := 0; i < 20; i++ {
		f.Observe(float64(10 + 2*i))
	}
	if f.Predict() < 40 {
		t.Errorf("Holt on a ramp predicts %v, want ~50", f.Predict())
	}
	mae, _ := edgebench.EvaluateForecast(edgebench.NewEWMAForecaster(0.5), []float64{1, 1, 1})
	if mae != 0 {
		t.Error("EWMA on constant series should be error-free")
	}
}

func TestPublicAPIMitigations(t *testing.T) {
	model := edgebench.NewInferenceModel()
	sc, _ := edgebench.ScenarioByName("typical-25ms")
	arrivals := make([]edgebench.ArrivalProcess, 3)
	for i, r := range []float64{15, 5, 4} {
		arrivals[i] = edgebench.NewPoissonArrivals(r)
	}
	tr := edgebench.Generate(edgebench.GenSpec{
		Sites: 3, Duration: 200, Model: model, Seed: 9, Arrivals: arrivals,
	})
	over := edgebench.RunEdgeWithOverflow(tr, edgebench.OverflowConfig{
		Sites: 3, ServersPerSite: 1,
		EdgePath: sc.Edge, CloudPath: sc.Cloud,
		CloudServers: 3, OverflowThreshold: 4, Warmup: 20, Seed: 10,
	})
	if over.Overflowed == 0 {
		t.Error("hot site should overflow")
	}
	scaled := edgebench.RunEdgeAutoscaled(tr, edgebench.EdgeConfig{
		Sites: 3, ServersPerSite: 1, Path: sc.Edge, Warmup: 20, Seed: 10,
	}, edgebench.AutoscaleConfig{
		Interval: 2, Min: 1, Max: 3, UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 5,
	})
	if scaled.ScaleUps == 0 {
		t.Error("autoscaler should scale up the hot site")
	}
	// Timeline tooling over a replay.
	spec := edgebench.DefaultAzureSpec()
	spec.Minutes = 5
	res := edgebench.RunAzureReplay(spec, 1.0, 7)
	frac, _ := edgebench.InversionFraction(res.EdgeTimeline, res.CloudTimeline)
	if frac < 0 || frac > 1 {
		t.Errorf("inversion fraction %v outside [0,1]", frac)
	}
}
