// Three-tier hierarchy: the declarative topology layer expresses
// deployment shapes the paper's fixed edge/cloud pair cannot — here an
// edge→regional→cloud overflow chain built programmatically, run
// against the pure edge and pure cloud on the same skewed workload.
// The hot site escalates work one network hop at a time instead of
// queueing locally (inversion) or paying the full cloud RTT for
// everything.
package main

import (
	"fmt"

	edgebench "repro"
)

func main() {
	model := edgebench.NewInferenceModel()
	sc, _ := edgebench.ScenarioByName("typical-25ms")
	regional := edgebench.JitteredPath("regional-13ms", 0.013, 0.002)

	// A skewed workload: the first site runs near one server's
	// saturation while the rest idle — the regime where partitioned
	// near capacity loses to pooled far capacity (§4.4).
	const sites = 5
	weights := edgebench.ZipfPartition(sites, 1.1).W
	aggregate := 0.75 * edgebench.SaturationRate * sites
	arrivals := make([]edgebench.ArrivalProcess, sites)
	for i, w := range weights {
		arrivals[i] = edgebench.NewPoissonArrivals(aggregate * w)
	}
	tr := edgebench.Generate(edgebench.GenSpec{
		Sites: sites, Duration: 600, Model: model, Seed: 31, Arrivals: arrivals,
	})

	// The chain: 5 edge servers, 2 regional, 3 cloud — 10 total, the
	// same budget as the pure shapes below.
	chain := edgebench.Topology{
		Name: "edge-regional-cloud",
		Tiers: []edgebench.Tier{
			{Name: "edge", Sites: sites, ServersPerSite: 1, Path: sc.Edge},
			{Name: "regional", Sites: 1, ServersPerSite: 2, Path: regional,
				Dispatch: "central-queue"},
			{Name: "cloud", Sites: 1, ServersPerSite: 3, Path: sc.Cloud,
				Dispatch: "central-queue"},
		},
		Spills: []edgebench.SpillEdge{
			{From: "edge", To: "regional", Threshold: 3, DetourPath: &regional},
			{From: "regional", To: "cloud", Threshold: 4, DetourPath: &sc.Cloud},
		},
	}

	edge, cloud := edgebench.RunPaired(tr, edgebench.EdgeConfig{
		Sites: sites, ServersPerSite: 2, Path: sc.Edge, Warmup: 60, Seed: 41,
	}, edgebench.CloudConfig{
		Servers: 10, Path: sc.Cloud, Warmup: 60, Seed: 42,
	})
	chained, err := edgebench.RunTopology(tr.Source(), chain, edgebench.TopologyOptions{
		Warmup: 60, Seed: 43, SizeHint: tr.Len(),
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("skewed workload: %.1f req/s aggregate, hottest site %.0f%%\n\n",
		aggregate, weights[0]*100)
	show := func(name string, mean, p95 float64) {
		fmt.Printf("%-28s mean %7.1f ms   p95 %8.1f ms\n", name, mean*1000, p95*1000)
	}
	show("edge (5x2)", edge.MeanLatency(), edge.P95Latency())
	show("cloud (10)", cloud.MeanLatency(), cloud.P95Latency())
	show("edge+regional+cloud (5+2+3)", chained.MeanLatency(), chained.P95Latency())

	fmt.Println("\nwhere the chain served its requests:")
	for _, tier := range chained.Tiers {
		fmt.Printf("  %-9s served %5d (%4.1f%%)  spilled on %5d  mean %7.1f ms\n",
			tier.Name, tier.Served,
			100*float64(tier.Served)/float64(chained.Completed),
			tier.Spilled, tier.EndToEnd.Mean()*1000)
	}

	switch {
	case chained.MeanLatency() < edge.MeanLatency() && chained.MeanLatency() < cloud.MeanLatency():
		fmt.Println("\n=> the hierarchy beats both pure shapes: near capacity for the common case,")
		fmt.Println("   pooled far capacity only for the overflow.")
	case chained.MeanLatency() < edge.MeanLatency():
		fmt.Println("\n=> the hierarchy rescues the skew-inverted edge, approaching the pooled cloud.")
	default:
		fmt.Println("\n=> at this load the flat edge still wins; raise the skew to see the chain pay off.")
	}
}
