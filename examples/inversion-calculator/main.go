// Inversion calculator: sweep deployment shapes and network distances to
// map where the edge is actually the right choice — the decision table an
// application designer would build from the paper's Corollaries 3.1.1,
// 3.1.2 and 3.1.3 before committing to an edge rollout.
package main

import (
	"fmt"

	edgebench "repro"
)

func main() {
	model := edgebench.NewInferenceModel()
	mu := model.Mu()

	fmt.Println("Cutoff utilization ρ* by edge fan-out k and cloud RTT (edge at 1 ms).")
	fmt.Println("Run above ρ* and the cloud delivers lower mean latency (exact M/M model).")
	fmt.Println()

	rtts := []float64{0.013, 0.025, 0.054, 0.080}
	fmt.Printf("%-8s", "k \\ RTT")
	for _, r := range rtts {
		fmt.Printf("%10.0fms", r*1000)
	}
	fmt.Println()
	for _, k := range []int{2, 5, 10, 20, 50} {
		fmt.Printf("%-8d", k)
		for _, rtt := range rtts {
			dep := edgebench.Deployment{
				K: k, ServersPerSite: 1, Mu: mu,
				EdgeRTT: 0.001, CloudRTT: rtt,
			}
			fmt.Printf("%11.0f%%", dep.CutoffUtilizationExactMM()*100)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Corollary 3.1.3: minimum cloud RTT below which even a 0 ms edge loses")
	fmt.Println("(k=5, balanced load):")
	dep := edgebench.Deployment{K: 5, ServersPerSite: 1, Mu: mu, EdgeRTT: 0, CloudRTT: 1}
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.9} {
		bound := dep.HardCloudRTTBound313(rho, rho)
		fmt.Printf("  at ρ=%.1f: cloud closer than %6.1f ms always wins\n", rho, bound*1000)
	}

	fmt.Println()
	fmt.Println("§5.2 capacity cost of the edge (two-sigma peak provisioning):")
	for _, k := range []int{5, 20, 100} {
		cloud, edge, overhead := edgebench.TwoSigmaCapacity(100, k)
		fmt.Printf("  λ=100 req/s over k=%-3d sites: cloud %6.1f, edge %6.1f req/s (%.2fx)\n",
			k, cloud, edge, overhead)
	}
}
