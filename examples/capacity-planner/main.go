// Capacity planner: the paper's §5 design implications end to end. Given
// a skewed workload forecast, (1) plan per-site capacity with Eq. 22 and
// a headroom factor, (2) verify by simulation that the plan removes the
// inversion, and (3) compare against the two run-time mitigations —
// reactive autoscaling (the paper's future work) and hierarchical
// overflow to a cloud backstop — including their capacity cost.
package main

import (
	"fmt"

	edgebench "repro"
)

func main() {
	model := edgebench.NewInferenceModel()
	sc, _ := edgebench.ScenarioByName("typical-25ms")

	// Forecast: five sites with a strong spatial skew; the hot site alone
	// exceeds one server's 13 req/s capacity.
	forecast := []float64{16, 9, 6, 4, 4}
	var total float64
	for _, l := range forecast {
		total += l
	}
	fmt.Printf("forecast per-site load: %v req/s (total %.0f, cloud would use %d servers)\n\n",
		forecast, total, 5)

	// (1) Static plan from Equation 22 with 20% headroom.
	plan := edgebench.PlanEdgeCapacity(sc.DeltaN(), model.Mu(), forecast, 5, 1.2, 16)
	fmt.Printf("§5.1 static plan (Eq. 22, 1.2x headroom): per-site %v, edge total %d vs cloud %d\n",
		plan.PerSite, plan.TotalEdge, plan.CloudTotal)

	// (2) Verify by simulation.
	arrivals := make([]edgebench.ArrivalProcess, len(forecast))
	for i, l := range forecast {
		arrivals[i] = edgebench.NewPoissonArrivals(l)
	}
	tr := edgebench.Generate(edgebench.GenSpec{
		Sites: 5, Duration: 600, Model: model, Seed: 3, Arrivals: arrivals,
	})

	naive, cloud := edgebench.RunPaired(tr, edgebench.EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 60, Seed: 4,
	}, edgebench.CloudConfig{
		Servers: 5, Path: sc.Cloud, Warmup: 60, Seed: 5,
	})
	planned := edgebench.RunEdge(tr, edgebench.EdgeConfig{
		Sites: 5, Path: sc.Edge, Warmup: 60, Seed: 4,
		PerSiteServers: plan.PerSite,
	})

	// (3) Run-time mitigations on the unplanned 1-server-per-site edge.
	scaled := edgebench.RunEdgeAutoscaled(tr, edgebench.EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 60, Seed: 4,
	}, edgebench.AutoscaleConfig{
		Interval: 2, Min: 1, Max: 4,
		UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 6,
	})
	overflow := edgebench.RunEdgeWithOverflow(tr, edgebench.OverflowConfig{
		Sites: 5, ServersPerSite: 1,
		EdgePath: sc.Edge, CloudPath: sc.Cloud,
		CloudServers: 5, OverflowThreshold: 4,
		Warmup: 60, Seed: 4,
	})

	fmt.Println("\nmeasured end-to-end latency:")
	fmt.Printf("  %-34s mean %8.1f ms   p95 %9.1f ms\n", "cloud (5 servers, 25 ms away)",
		cloud.MeanLatency()*1000, cloud.P95Latency()*1000)
	fmt.Printf("  %-34s mean %8.1f ms   p95 %9.1f ms\n", "edge, naive (1 server/site)",
		naive.MeanLatency()*1000, naive.P95Latency()*1000)
	fmt.Printf("  %-34s mean %8.1f ms   p95 %9.1f ms   (%d servers)\n", "edge, planned capacity",
		planned.MeanLatency()*1000, planned.P95Latency()*1000, plan.TotalEdge)
	fmt.Printf("  %-34s mean %8.1f ms   p95 %9.1f ms   (peak %d servers at one site)\n",
		"edge, autoscaled", scaled.MeanLatency()*1000, scaled.P95Latency()*1000, scaled.PeakServers)
	fmt.Printf("  %-34s mean %8.1f ms   p95 %9.1f ms   (%.0f%% overflowed to cloud)\n",
		"edge, cloud overflow", overflow.MeanLatency()*1000, overflow.P95Latency()*1000,
		100*float64(overflow.Overflowed)/float64(tr.Len()))

	fmt.Println("\n§5.2 capacity cost: the planned edge uses",
		plan.TotalEdge, "servers where the cloud pools", plan.CloudTotal, "—")
	_, _, overhead := edgebench.TwoSigmaCapacity(total, 5)
	fmt.Printf("the two-sigma rule predicts a %.2fx edge overprovisioning factor for this λ and k.\n", overhead)

	if planned.MeanLatency() < cloud.MeanLatency() {
		fmt.Println("\n=> with capacity matched to the skew, the edge regains its advantage (Lemma 3.3).")
	} else {
		fmt.Println("\n=> even the planned edge does not beat the cloud here — inversion persists (Lemma 3.1).")
	}
}
