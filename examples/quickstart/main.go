// Quickstart: decide whether an application belongs at the edge or in
// the cloud, first analytically with the paper's rules of thumb, then by
// simulating both deployments under the same workload.
package main

import (
	"fmt"

	edgebench "repro"
)

func main() {
	// The application: the paper's DNN inference service, saturating one
	// server at 13 req/s. Five edge sites (1 server each) 1 ms away, or
	// five cloud servers 25 ms away.
	model := edgebench.NewInferenceModel()
	dep := edgebench.Deployment{
		K:              5,
		ServersPerSite: 1,
		Mu:             model.Mu(),
		EdgeRTT:        0.001,
		CloudRTT:       0.025,
	}

	// Rule of thumb (§3): above this utilization the edge's queueing
	// delay outweighs its 24 ms network advantage.
	cutoff := dep.CutoffUtilizationExactMM()
	fmt.Printf("analytic cutoff utilization (exact M/M): %.0f%%\n", cutoff*100)

	// Verify by simulation at 8 req/s per server (61%% utilization).
	spec := edgebench.GenSpec{
		Sites:       5,
		Duration:    600,
		PerSiteRate: 8,
		Model:       model,
		Seed:        1,
	}
	tr := edgebench.Generate(spec)
	sc, _ := edgebench.ScenarioByName("typical-25ms")
	edge, cloud := edgebench.RunPaired(tr, edgebench.EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 60, Seed: 2,
	}, edgebench.CloudConfig{
		Servers: 5, Path: sc.Cloud, Warmup: 60, Seed: 3,
	})

	fmt.Printf("edge : mean %5.1f ms   p95 %6.1f ms   (utilization %.0f%%)\n",
		edge.MeanLatency()*1000, edge.P95Latency()*1000, edge.Utilization*100)
	fmt.Printf("cloud: mean %5.1f ms   p95 %6.1f ms\n",
		cloud.MeanLatency()*1000, cloud.P95Latency()*1000)

	switch {
	case edge.MeanLatency() > cloud.MeanLatency():
		fmt.Println("=> performance inversion: despite a 24 ms network advantage, the cloud wins.")
	case edge.P95Latency() > cloud.P95Latency():
		fmt.Println("=> tail inversion: the edge still wins on mean, but its p95 is already")
		fmt.Println("   worse than the cloud's — the paper's Figure 5 effect.")
	default:
		fmt.Println("=> the edge wins at this load.")
	}

	// Scale without the trace: Stream generates the same spec on the
	// fly — the bit-identical record sequence Generate produced above,
	// in O(sites) memory — and BoundedSummary keeps the collectors O(1),
	// so the same run shape works unchanged at 10⁸ requests (see
	// `edgesim -topology ... -stream -summary bounded`). Replaying the
	// identical spec+seed streamed reproduces the edge numbers exactly.
	streamed, err := edgebench.RunTopology(
		edgebench.Stream(spec),
		edgebench.EdgeTopology(edgebench.EdgeConfig{
			Sites: 5, ServersPerSite: 1, Path: sc.Edge,
		}),
		edgebench.TopologyOptions{
			Warmup: 60, Seed: 2, Summary: edgebench.BoundedSummary,
		})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nstreamed replay (no trace in memory): %d requests, mean %5.1f ms (exact match: %v)\n",
		streamed.Offered, streamed.EndToEnd.Mean()*1000,
		streamed.EndToEnd.Mean() == edge.MeanLatency())
}
