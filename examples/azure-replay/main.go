// Azure replay: reproduce the paper's §4.5 trace-driven experiment with
// the synthetic Azure-like serverless workload — five edge sites with
// skewed, bursty request streams versus one cloud aggregating all of
// them — and show how workload skew causes intermittent inversion even
// when average utilization looks safe.
package main

import (
	"fmt"

	edgebench "repro"
)

func main() {
	spec := edgebench.DefaultAzureSpec()
	res := edgebench.RunAzureReplay(spec, 1.0, 7)

	fmt.Println("Per-site workload (requests/minute), synthetic Azure trace:")
	for i, s := range res.Series {
		min, max := s.Counts[0], s.Counts[0]
		for _, c := range s.Counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		fmt.Printf("  Edge %d: total %6.0f  min %4.0f  max %4.0f req/min\n", i+1, s.Total(), min, max)
	}

	fmt.Println("\nMinute-by-minute mean latency (ms):")
	fmt.Printf("%-8s %12s %12s %s\n", "minute", "edge", "cloud", "leader")
	inversions := 0
	n := res.EdgeTimeline.NumBins()
	if m := res.CloudTimeline.NumBins(); m < n {
		n = m
	}
	for i := 0; i < n; i++ {
		e := res.EdgeTimeline.BinMean(i) * 1000
		c := res.CloudTimeline.BinMean(i) * 1000
		leader := "edge"
		if e > c {
			leader = "CLOUD (inversion)"
			inversions++
		}
		fmt.Printf("%-8d %12.1f %12.1f %s\n", i+1, e, c, leader)
	}
	fmt.Printf("\n%d of %d minutes showed performance inversion.\n", inversions, n)

	fmt.Println("\nPer-site latency spread (the paper's Figure 10):")
	for _, b := range res.EdgeBoxes {
		fmt.Printf("  %-8s median %6.1f ms   q3 %6.1f ms   whisker %7.1f ms\n",
			b.Label, b.Median*1000, b.Q3*1000, b.UpperFence*1000)
	}
	b := res.CloudBox
	fmt.Printf("  %-8s median %6.1f ms   q3 %6.1f ms   whisker %7.1f ms\n",
		b.Label, b.Median*1000, b.Q3*1000, b.UpperFence*1000)

	fmt.Printf("\noverall: edge mean %.1f ms vs cloud mean %.1f ms; edge p95 %.1f ms vs cloud p95 %.1f ms\n",
		res.EdgeResult.MeanLatency()*1000, res.CloudResult.MeanLatency()*1000,
		res.EdgeResult.P95Latency()*1000, res.CloudResult.P95Latency()*1000)
}
