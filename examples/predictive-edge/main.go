// Predictive edge autoscaling: the paper's §3.2 takeaway says edge
// capacity should track the workload's spatial and temporal drift, and
// §7 asks what that elasticity costs. This walkthrough puts both
// questions to the simulator: a diurnal (NHPP) workload sweeps over
// phase-shifted edge sites, and every scaler policy — the reactive
// threshold controller and one predictive controller per forecaster —
// drives the identical deployment on the identical trace. The output
// is the latency-vs-cost frontier: which policy provisions ahead of
// the ramp, which one chases it, and what each choice spends per
// thousand requests.
package main

import (
	"fmt"
	"sort"

	edgebench "repro"
)

func main() {
	// One shared scenario: 5 edge sites, 10 minutes, mean 8 req/s per
	// site swinging 0.25x..1.75x around the mean as the "day" passes.
	// Each site's peak arrives at a different time, so a fixed
	// provisioning level is wrong almost everywhere almost always.
	cfg := edgebench.ScalerComparisonConfig{
		Workload: "nhpp",
		Sites:    5,
		Duration: 600,
		Seed:     7,
		BaseRate: 8,
		// Each site may grow from 1 to 6 servers; overload beyond the
		// scaler's reach spills to a static cloud backstop.
		MinServers: 1,
		MaxServers: 6,
	}
	// nil Specs = the full registry: reactive + predictive × every
	// forecaster (naive, sma, ewma, holt, window-max).
	res, err := edgebench.RunScalerComparison(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Println("diurnal workload, 5 edge sites, scaler policy comparison")
	fmt.Println("(same trace, same seed — every difference is the policy)")
	fmt.Println()
	fmt.Printf("%-26s %10s %10s %6s %9s %8s %9s\n",
		"policy", "mean (ms)", "p95 (ms)", "peak", "actions", "srv-sec", "$/kreq")
	sorted := res.Rows
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].CostPerRequest < sorted[j].CostPerRequest })
	for _, row := range sorted {
		edge := row.Tiers[0]
		fmt.Printf("%-26s %10.1f %10.1f %6d %9d %8.0f %9.4f\n",
			row.Policy, row.Mean*1000, row.P95*1000,
			edge.PeakServers, edge.ScaleUps+edge.ScaleDowns,
			edge.ServerSeconds, row.CostPerRequest*1000)
	}

	// The frontier verdict: reactive thresholds only react after queues
	// build, so on a smooth ramp a forecaster that looks one interval
	// ahead (holt tracks the trend, window-max provisions for the
	// recent peak) buys lower latency for nearly the same spend.
	best := sorted[0]
	for _, row := range sorted {
		if row.Mean < best.Mean {
			best = row
		}
	}
	fmt.Printf("\nlowest mean latency: %s (%.1f ms at %.4f $/kreq)\n",
		best.Policy, best.Mean*1000, best.CostPerRequest*1000)
	for _, row := range sorted {
		if row.Policy == "reactive" {
			fmt.Printf("reactive baseline:   %.1f ms at %.4f $/kreq\n",
				row.Mean*1000, row.CostPerRequest*1000)
			if best.Mean < row.Mean {
				fmt.Println("\n=> prediction pays: provisioning for the forecast beats chasing the queue.")
			} else {
				fmt.Println("\n=> on this trace the threshold controller holds its own; burstier")
				fmt.Println("   workloads (try Workload: \"mmpp\") widen the gap.")
			}
		}
	}
}
