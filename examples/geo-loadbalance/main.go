// Geographic load balancing: demonstrate the paper's §5.1 mitigation.
// Under a skewed workload, hot edge sites invert while cool ones idle;
// allowing overloaded sites to "jockey" requests to nearby sites (at a
// small detour cost) restores the edge's advantage.
package main

import (
	"fmt"

	edgebench "repro"
)

func main() {
	model := edgebench.NewInferenceModel()
	sc, _ := edgebench.ScenarioByName("typical-25ms")

	// A heavily skewed workload: site 1 gets ~46% of all traffic
	// (Zipf s=1.2 over 5 sites), aggregate load 60% of total capacity.
	const sites = 5
	aggregate := 0.6 * edgebench.SaturationRate * sites
	weights := edgebench.ZipfPartition(sites, 1.2).W
	arrivals := make([]edgebench.ArrivalProcess, sites)
	for i, w := range weights {
		arrivals[i] = edgebench.NewPoissonArrivals(aggregate * w)
	}
	tr := edgebench.Generate(edgebench.GenSpec{
		Sites:    sites,
		Duration: 600,
		Model:    model,
		Seed:     11,
		Arrivals: arrivals,
	})

	fmt.Printf("skewed workload: per-site shares %v, aggregate %.1f req/s (60%% of capacity)\n\n",
		fmtWeights(weights), aggregate)

	baseline, cloud := edgebench.RunPaired(tr, edgebench.EdgeConfig{
		Sites: sites, ServersPerSite: 1, Path: sc.Edge, Warmup: 60, Seed: 21,
	}, edgebench.CloudConfig{
		Servers: sites, Path: sc.Cloud, Warmup: 60, Seed: 22,
	})
	jockeyed := edgebench.RunEdge(tr, edgebench.EdgeConfig{
		Sites: sites, ServersPerSite: 1, Path: sc.Edge, Warmup: 60, Seed: 21,
		JockeyThreshold: 3,     // redirect when 3+ requests at the home site
		DetourRTT:       0.005, // 5 ms extra to reach a neighbor site
	})

	show := func(name string, r *edgebench.Result) {
		fmt.Printf("%-22s mean %7.1f ms   p95 %8.1f ms\n",
			name, r.MeanLatency()*1000, r.P95Latency()*1000)
	}
	show("edge (no balancing)", baseline)
	show("edge (geographic LB)", jockeyed)
	show("cloud (5 servers)", cloud)
	fmt.Printf("\ngeographic LB redirected %d requests (%.1f%% of the workload)\n",
		jockeyed.Redirected, 100*float64(jockeyed.Redirected)/float64(tr.Len()))

	fmt.Println("\nper-site utilization without balancing:")
	for _, s := range baseline.Sites {
		fmt.Printf("  site %d: %.0f%% utilized, mean %7.1f ms\n",
			s.Site+1, s.Utilization*100, s.EndToEnd.Mean()*1000)
	}

	switch {
	case baseline.MeanLatency() > cloud.MeanLatency() && jockeyed.MeanLatency() < cloud.MeanLatency():
		fmt.Println("\n=> skew caused inversion; geographic load balancing rescued the edge (§5.1).")
	case baseline.MeanLatency() > cloud.MeanLatency():
		fmt.Println("\n=> skew caused inversion; jockeying helped but the cloud still wins.")
	default:
		fmt.Println("\n=> the edge held its advantage at this load.")
	}
}

func fmtWeights(w []float64) []string {
	out := make([]string, len(w))
	for i, v := range w {
		out[i] = fmt.Sprintf("%.0f%%", v*100)
	}
	return out
}
