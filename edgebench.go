// Package edgebench reproduces "The hidden cost of the edge: a
// performance comparison of edge and cloud latencies" (Ali-Eldin, Wang,
// Shenoy; SC 2021, arXiv:2104.14050) as a reusable Go library.
//
// It answers one question for application designers: given an edge
// deployment (k geo-distributed sites, one queue each) and a cloud
// deployment (the same servers behind one queue), at what utilization
// does the edge's queueing delay overwhelm its network-latency advantage
// — the paper's "performance inversion"?
//
// The library has three layers, all re-exported here:
//
//   - Analytic: closed-form queueing results and the paper's inversion
//     bounds (Lemmas 3.1–3.3, Corollaries 3.1.1–3.1.3, 3.2.1, the §5
//     provisioning rules). See Deployment and the theory functions.
//
//   - Simulation: a discrete-event simulator of edge and cloud
//     deployments under synthetic or trace-driven workloads, which
//     substitutes for the paper's EC2 testbed. See Generate, RunEdge,
//     RunCloud.
//
//   - Live testbed: a real net/http inference-service emulator, reverse
//     proxy and open-loop load generator for end-to-end wall-clock
//     experiments on localhost. See the httpserv and loadgen packages
//     via cmd/loadtest.
//
// A minimal inversion check:
//
//	dep := edgebench.Deployment{
//		K: 5, ServersPerSite: 1,
//		Mu: edgebench.NewInferenceModel().Mu(),
//		EdgeRTT: 0.001, CloudRTT: 0.025,
//	}
//	cutoff := dep.CutoffUtilizationExactMM()
//	// run above `cutoff` utilization and the cloud is the better home.
package edgebench

import (
	"repro/internal/app"
	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/econ"
	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/netem"
	"repro/internal/queue"
	"repro/internal/stats"
	"repro/internal/theory"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ---- Analytic layer (internal/theory) ----

// Deployment describes one edge-vs-cloud comparison instance; its
// methods implement the paper's lemmas and corollaries.
type Deployment = theory.Deployment

// ProvisionPlan is a per-site capacity plan produced by PlanEdgeCapacity.
type ProvisionPlan = theory.ProvisionPlan

// Closed-form queueing results (see internal/theory for derivations).
var (
	MM1Wait            = theory.MM1Wait
	MM1Sojourn         = theory.MM1Sojourn
	MMcWait            = theory.MMcWait
	MMcSojourn         = theory.MMcSojourn
	ErlangB            = theory.ErlangB
	ErlangC            = theory.ErlangC
	WhittCondWait      = theory.WhittCondWait
	AllenCunneenWait   = theory.AllenCunneenWait
	KingmanWait        = theory.KingmanWait
	SkewedEdgeCondWait = theory.SkewedEdgeCondWait
	TwoSigmaCapacity   = theory.TwoSigmaCapacity
	TwoSigmaServers    = theory.TwoSigmaServers
	MinEdgeServers     = theory.MinEdgeServers
	PlanEdgeCapacity   = theory.PlanEdgeCapacity
)

// ---- Application model (internal/app) ----

// InferenceModel is the calibrated DNN-inference service-time model.
type InferenceModel = app.InferenceModel

// NewInferenceModel returns the paper's c5a.xlarge DNN service model
// (saturation at 13 req/s).
func NewInferenceModel() InferenceModel { return app.NewInferenceModel() }

// NewInferenceModelWith returns a model with explicit mean service time
// (seconds) and squared coefficient of variation.
func NewInferenceModelWith(mean, scv float64) InferenceModel {
	return app.NewInferenceModelWith(mean, scv)
}

// SaturationRate is the paper's measured 13 req/s saturation throughput.
const SaturationRate = app.SaturationRate

// ---- Network model (internal/netem) ----

// Path models one network path's round-trip latency.
type Path = netem.Path

// Scenario pairs an edge path with a cloud path.
type Scenario = netem.Scenario

// Network path constructors and the paper's scenario presets.
var (
	ConstantPath   = netem.Constant
	JitteredPath   = netem.Jittered
	PaperScenarios = netem.PaperScenarios
	ScenarioByName = netem.ScenarioByName
)

// ---- Simulation layer (internal/cluster, internal/queue) ----

// GenSpec describes how to synthesize a workload trace.
type GenSpec = cluster.GenSpec

// WorkloadTrace is a time-ordered request sequence driving paired
// edge/cloud runs.
type WorkloadTrace = cluster.WorkloadTrace

// Source streams workload records lazily into the replay core;
// WorkloadTrace implements it, and generator sources can replay
// arbitrarily long workloads without materializing them.
type Source = cluster.Source

// FallibleSource is a Source that can end on a failure (trace-file
// decoders); RunTopology surfaces its Err instead of returning a
// silently truncated result.
type FallibleSource = cluster.FallibleSource

// SourceFactory hands out fresh Sources over the same record sequence,
// so swept and paired runs each take an independent iterator.
type SourceFactory = cluster.SourceFactory

// SummaryMode selects a run's latency-collection memory model (see
// EdgeConfig.Summary): ExactSummary retains every observation,
// BoundedSummary keeps O(1) streaming moments and P² quantiles.
type SummaryMode = stats.Mode

// Latency summary memory models.
const (
	ExactSummary   = stats.Exact
	BoundedSummary = stats.Bounded
)

// LatencyDigest is a latency collector with a selectable memory model
// (the type of Result.EndToEnd and friends).
type LatencyDigest = stats.Digest

// EdgeConfig configures a simulated edge deployment.
type EdgeConfig = cluster.EdgeConfig

// CloudConfig configures a simulated cloud deployment.
type CloudConfig = cluster.CloudConfig

// Result is one deployment run's measurements.
type Result = cluster.Result

// SiteResult is one edge site's measurements.
type SiteResult = cluster.SiteResult

// DispatchPolicy selects the cloud load-balancing policy.
type DispatchPolicy = cluster.DispatchPolicy

// Cloud dispatch policies.
const (
	CentralQueue = cluster.CentralQueue
	RoundRobin   = cluster.RoundRobin
	LeastConn    = cluster.LeastConn
	PowerOfTwo   = cluster.PowerOfTwo
	RandomSplit  = cluster.RandomSplit
)

// Queue service disciplines.
const (
	FCFS = queue.FCFS
	LIFO = queue.LIFO
	SJF  = queue.SJF
)

// ---- Declarative topology layer (internal/cluster) ----

// Topology is a declarative deployment graph: tiers connected by spill
// edges with optional class pinning, executed by RunTopology. The
// legacy RunEdge/RunCloud/RunEdgeWithOverflow/RunEdgeAutoscaled
// entry points are thin constructors over this layer.
type Topology = cluster.Topology

// Tier is one layer of a deployment graph.
type Tier = cluster.Tier

// SpillEdge forwards overloaded requests between tiers.
type SpillEdge = cluster.SpillEdge

// ClassRule pins a traffic class to an entry tier.
type ClassRule = cluster.ClassRule

// TopologyOptions configures one topology run.
type TopologyOptions = cluster.Options

// TopologyResult is a topology run: aggregate Result plus per-tier
// breakdowns and request-conservation counters.
type TopologyResult = cluster.TopologyResult

// TierResult is one tier's share of a topology run.
type TierResult = cluster.TierResult

// TopologySpec is the serializable (JSON) form of a Topology.
type TopologySpec = cluster.TopologySpec

// Topology entry points: the generic executor, the JSON codec, the
// shipped multi-tier presets, and the legacy-shape constructors.
var (
	RunTopology            = cluster.Run
	ParseTopology          = cluster.ParseTopology
	ParseTopologySpec      = cluster.ParseTopologySpec
	TopologyPresets        = cluster.TopologyPresets
	PresetTopology         = cluster.PresetTopology
	EdgeTopology           = cluster.EdgeTopology
	CloudTopology          = cluster.CloudTopology
	OverflowTopology       = cluster.OverflowTopology
	AutoscaledEdgeTopology = cluster.AutoscaledEdgeTopology
)

// OverflowConfig configures a hierarchical edge deployment in which
// overloaded sites forward requests to a cloud backstop.
type OverflowConfig = cluster.OverflowConfig

// OverflowResult is a hierarchical run's measurements.
type OverflowResult = cluster.OverflowResult

// AutoscaleConfig parameterizes the reactive per-site capacity
// controller (the paper's future-work direction).
type AutoscaleConfig = autoscale.Config

// AutoscaleResult is an autoscaled edge run's measurements.
type AutoscaleResult = cluster.AutoscaleResult

// Scaler is the policy-pluggable capacity controller a Tier attaches
// via ScalerSpec: reactive thresholds or forecast-driven predictive
// provisioning behind one interface.
type Scaler = autoscale.Scaler

// ScalerSpec declaratively selects and parameterizes a scaler policy.
type ScalerSpec = autoscale.Spec

// ScalerTelemetry summarizes a scaler's activity over a run.
type ScalerTelemetry = autoscale.Telemetry

// Scaler construction: the policy registry (mirroring the lb registry)
// and the legacy-config converter.
var (
	NewScaler         = autoscale.New
	ScalerPolicies    = autoscale.Policies
	ReactiveScaler    = autoscale.ReactiveSpec
	NewPredictive     = autoscale.NewPredictive
	NewReactiveScaler = autoscale.NewReactive
)

// Simulation entry points. Stream is Generate's lazy twin: the
// identical record sequence for the same spec and seed, produced on
// the fly in O(sites) memory, so 10⁸-request replays (with
// BoundedSummary) never hold a trace.
var (
	Generate               = cluster.Generate
	Stream                 = cluster.Stream
	StreamFactory          = cluster.StreamFactory
	RunEdge                = cluster.RunEdge
	RunCloud               = cluster.RunCloud
	RunPaired              = cluster.RunPaired
	RunEdgeWithOverflow    = cluster.RunEdgeWithOverflow
	RunEdgeAutoscaled      = cluster.RunEdgeAutoscaled
	DefaultAutoscaleConfig = autoscale.DefaultConfig
)

// ---- Workload and trace generators ----

// ArrivalProcess produces a monotone sequence of request arrival times.
type ArrivalProcess = workload.ArrivalProcess

// Partitioner assigns spatial load weights across edge sites.
type Partitioner = workload.Partitioner

// AzureSpec parameterizes the synthetic Azure-like serverless workload.
type AzureSpec = trace.AzureSpec

// SiteSeries is one site's request-count envelope.
type SiteSeries = trace.SiteSeries

// TaxiSpec parameterizes the synthetic vehicular-mobility workload.
type TaxiSpec = trace.TaxiSpec

// Trace and workload constructors.
var (
	DefaultAzureSpec   = trace.DefaultAzureSpec
	GenerateAzure      = trace.GenerateAzure
	ToArrivalProcesses = trace.ToArrivalProcesses
	DefaultTaxiSpec    = trace.DefaultTaxiSpec
	TaxiCellLoads      = trace.TaxiCellLoads
	CellBoxPlots       = trace.CellBoxPlots
	NewPoissonArrivals = workload.NewPoisson
	NewPacedArrivals   = workload.NewPaced
	UniformPartition   = func(k int) workload.Partitioner { return workload.Uniform{K: k} }
	ZipfPartition      = workload.Zipf
	FitDistToMeanSCV   = dist.FitSCV
)

// ---- Experiments (one per paper figure) ----

// SweepConfig describes a request-rate sweep (Figures 3–5).
type SweepConfig = experiments.SweepConfig

// SweepResult is a completed sweep with crossover detection.
type SweepResult = experiments.SweepResult

// Metric selects mean or p95 for crossover detection.
type Metric = experiments.Metric

// Crossover metrics.
const (
	MeanMetric = experiments.Mean
	P95Metric  = experiments.P95
)

// InversionInterval is a detected span of timeline inversion.
type InversionInterval = experiments.InversionInterval

// ReplicatedPoint is one sweep point aggregated across replications.
type ReplicatedPoint = experiments.ReplicatedPoint

// Experiment runners, one per paper figure/table, plus statistical and
// timeline tooling.
var (
	DefaultSweepConfig = experiments.DefaultSweepConfig
	RunSweep           = experiments.RunSweep
	RunFig3            = experiments.RunFig3
	RunFig6            = experiments.RunFig6
	RunFig7            = experiments.RunFig7
	RunAzureReplay     = experiments.RunAzureReplay
	RunValidation      = experiments.RunValidation
	RunCapacityTable   = experiments.RunCapacityTable
	RunReplicatedSweep = experiments.RunReplicatedSweep
	CrossoverCI        = experiments.CrossoverCI
	DetectInversions   = experiments.DetectInversions
	InversionFraction  = experiments.InversionFraction
)

// TopologySweepConfig describes a request-rate sweep over an arbitrary
// deployment topology.
type TopologySweepConfig = experiments.TopologySweepConfig

// TopologySweepResult is a completed topology sweep.
type TopologySweepResult = experiments.TopologySweepResult

// ThreeTierResult is the hierarchy figure comparing four
// capacity-matched deployment shapes.
type ThreeTierResult = experiments.ThreeTierResult

// ScalerComparisonConfig sweeps scaler policies (reactive vs
// predictive × forecaster) over one time-varying workload.
type ScalerComparisonConfig = experiments.ScalerComparisonConfig

// ScalerComparisonResult is a completed scaler policy sweep with
// latency, telemetry, and per-tier cost rows.
type ScalerComparisonResult = experiments.ScalerComparisonResult

// Topology experiment runners.
var (
	RunTopologySweep    = experiments.RunTopologySweep
	RunFigThreeTier     = experiments.RunFigThreeTier
	RunScalerComparison = experiments.RunScalerComparison
	DefaultScalerSpecs  = experiments.DefaultScalerSpecs
)

// ---- Extensions: tail analysis, economics, forecasting ----

// Tail-latency closed forms (extending the paper's mean-only analysis)
// and bounded-queue loss models.
var (
	MMcWaitQuantile     = theory.MMcWaitQuantile
	MMcWaitCCDF         = theory.MMcWaitCCDF
	MMcKLossProbability = theory.MMcKLossProbability
	EffectiveThroughput = theory.EffectiveThroughput
)

// Pricing holds per-server-hour prices for the §7 economics model.
type Pricing = econ.Pricing

// CostComparison prices a workload on the edge versus the cloud.
type CostComparison = econ.Comparison

// Economic analysis entry points.
var (
	DefaultPricing       = econ.DefaultPricing
	CompareCost          = econ.Compare
	BreakEvenEdgePremium = econ.BreakEvenEdgePremium
	AutoscaledCost       = econ.AutoscaledCost
)

// Forecaster predicts the next value of a sampled workload series.
type Forecaster = forecast.Forecaster

// ForecastOptions parameterizes registry construction of forecasters.
type ForecastOptions = forecast.Options

// Workload forecasters for predictive capacity allocation, plus the
// by-name registry the declarative scaler specs resolve through.
var (
	NewEWMAForecaster = forecast.NewEWMA
	NewHoltForecaster = forecast.NewHolt
	NewSMAForecaster  = forecast.NewSMA
	EvaluateForecast  = forecast.Evaluate
	ForecasterNames   = forecast.Names
	NewForecaster     = forecast.New
)

// ---- Statistics ----

// Sample collects observations for exact quantiles.
type Sample = stats.Sample

// BoxPlot is a five-number summary.
type BoxPlot = stats.BoxPlot

// MomentStream accumulates running moments (Welford). Stream is the
// workload generator source — see the Simulation entry points.
type MomentStream = stats.Stream
