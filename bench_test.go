// Benchmarks regenerating every table and figure of the paper (one bench
// per artifact), plus ablation benches for the design choices DESIGN.md
// calls out and micro-benchmarks of the hot kernels. Latency/shape
// metrics are attached to each bench via b.ReportMetric so `go test
// -bench` output records the reproduced numbers alongside timing.
package edgebench_test

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/admit"
	"repro/internal/app"
	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/netem"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/theory"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchDuration keeps per-iteration simulation cost moderate while
// preserving the figures' shapes.
const benchDuration = 200.0

// BenchmarkFig2TaxiCellLoad regenerates Figure 2: per-cell vehicle load
// box plots from the synthetic mobility trace.
func BenchmarkFig2TaxiCellLoad(b *testing.B) {
	spec := trace.DefaultTaxiSpec()
	spec.Hours = 6
	var skew float64
	for i := 0; i < b.N; i++ {
		loads := trace.TaxiCellLoads(spec)
		boxes := trace.CellBoxPlots(loads)
		skew = boxes[0].Median / (boxes[len(boxes)/2].Median + 1)
	}
	b.ReportMetric(skew, "hotspot/median-cell")
}

// BenchmarkFig3MeanLatencyTypicalCloud regenerates Figure 3: mean
// latency vs request rate for the 25 ms cloud.
func BenchmarkFig3MeanLatencyTypicalCloud(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3("typical-25ms", benchDuration, 42)
		if err != nil {
			b.Fatal(err)
		}
		if r, _, ok := res.OneServer.Crossover(experiments.Mean); ok {
			rate = r
		}
	}
	b.ReportMetric(rate, "crossover-req/s")
}

// BenchmarkFig4MeanLatencyDistantCloud regenerates Figure 4: mean
// latency vs rate for the 54 ms cloud.
func BenchmarkFig4MeanLatencyDistantCloud(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3("distant-54ms", benchDuration, 42)
		if err != nil {
			b.Fatal(err)
		}
		if r, _, ok := res.OneServer.Crossover(experiments.Mean); ok {
			rate = r
		} else {
			rate = 13 // no inversion below saturation
		}
	}
	b.ReportMetric(rate, "crossover-req/s")
}

// BenchmarkFig5TailLatencyDistantCloud regenerates Figure 5: p95 latency
// vs rate for the 54 ms cloud.
func BenchmarkFig5TailLatencyDistantCloud(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3("distant-54ms", benchDuration, 42)
		if err != nil {
			b.Fatal(err)
		}
		if r, _, ok := res.OneServer.Crossover(experiments.P95); ok {
			rate = r
		} else {
			rate = 13
		}
	}
	b.ReportMetric(rate, "p95-crossover-req/s")
}

// BenchmarkFig6LatencyDistributions regenerates Figure 6: the response
// distributions at 10 req/server/s.
func BenchmarkFig6LatencyDistributions(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		out := experiments.RunFig6(benchDuration, 5)
		spread = out[0].Box.IQR() / (out[3].Box.IQR() + 1e-9)
	}
	b.ReportMetric(spread, "edge1-IQR/cloud10-IQR")
}

// BenchmarkFig7CutoffUtilization regenerates Figure 7: cutoff
// utilizations across the four cloud RTTs.
func BenchmarkFig7CutoffUtilization(b *testing.B) {
	var nearest, farthest float64
	for i := 0; i < b.N; i++ {
		points := experiments.RunFig7(120, 11)
		nearest = points[0].MeanCutoff
		farthest = points[len(points)-1].MeanCutoff
	}
	b.ReportMetric(nearest*100, "cutoff%%-13ms")
	b.ReportMetric(farthest*100, "cutoff%%-80ms")
}

// BenchmarkFig8AzureTraceWorkload regenerates Figure 8: the 5-site
// Azure-like workload series.
func BenchmarkFig8AzureTraceWorkload(b *testing.B) {
	spec := trace.DefaultAzureSpec()
	var skew float64
	for i := 0; i < b.N; i++ {
		series := trace.GenerateAzure(spec)
		skew, _ = trace.SkewStats(series)
	}
	b.ReportMetric(skew, "mean-busiest/mean")
}

// BenchmarkFig9AzureReplayTimeline regenerates Figure 9: minute-binned
// mean latency for edge vs cloud under the Azure workload.
func BenchmarkFig9AzureReplayTimeline(b *testing.B) {
	spec := trace.DefaultAzureSpec()
	spec.Minutes = 8
	var edgeOverCloud float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunAzureReplay(spec, 1.0, 7)
		edgeOverCloud = res.EdgeResult.MeanLatency() / res.CloudResult.MeanLatency()
	}
	b.ReportMetric(edgeOverCloud, "edge-mean/cloud-mean")
}

// BenchmarkFig10PerSiteBoxplot regenerates Figure 10: per-site latency
// distributions under the Azure workload.
func BenchmarkFig10PerSiteBoxplot(b *testing.B) {
	spec := trace.DefaultAzureSpec()
	spec.Minutes = 8
	var worstOverBest float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunAzureReplay(spec, 1.0, 7)
		best, worst := res.EdgeBoxes[0].Median, res.EdgeBoxes[0].Median
		for _, bx := range res.EdgeBoxes {
			if bx.Median < best {
				best = bx.Median
			}
			if bx.Median > worst {
				worst = bx.Median
			}
		}
		worstOverBest = worst / best
	}
	b.ReportMetric(worstOverBest, "worst-site/best-site-median")
}

// BenchmarkValidationAnalyticVsSimulated regenerates the §4.2 validation
// table comparing measured crossovers against Corollary 3.1.1.
func BenchmarkValidationAnalyticVsSimulated(b *testing.B) {
	var measured, paper float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunValidation(benchDuration, 42)
		measured = rows[0].MeasuredUtil
		paper = rows[0].PaperCutoff
	}
	b.ReportMetric(measured*100, "measured-cutoff%%")
	b.ReportMetric(paper*100, "paper-cutoff%%")
}

// BenchmarkCapacityProvisioning regenerates the §5.2 capacity table.
func BenchmarkCapacityProvisioning(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunCapacityTable([]float64{10, 100, 1000}, []int{5, 10, 50})
		overhead = rows[len(rows)-1].Overhead
	}
	b.ReportMetric(overhead, "edge/cloud-capacity")
}

// BenchmarkTheoryAccuracy quantifies the Allen–Cunneen approximation
// error against exact M/M/k across the paper's operating range (Lemmas
// 3.1/3.2 numeric check).
func BenchmarkTheoryAccuracy(b *testing.B) {
	var maxErr float64
	for i := 0; i < b.N; i++ {
		maxErr = 0
		for _, k := range []int{1, 2, 5, 10} {
			for _, rho := range []float64{0.75, 0.85, 0.95} {
				e := theory.GGkAccuracyNote(k, rho, 13)
				if e < 0 {
					e = -e
				}
				if e > maxErr {
					maxErr = e
				}
			}
		}
	}
	b.ReportMetric(maxErr*100, "max-rel-err-%%")
}

// --- Ablation benches (DESIGN.md §4) ---

func ablationTrace(seed int64) *cluster.WorkloadTrace {
	return cluster.Generate(cluster.GenSpec{
		Sites: 5, Duration: benchDuration, PerSiteRate: 11, Seed: seed,
	})
}

// BenchmarkAblationDispatch compares cloud dispatch policies at high
// load: central queue vs least-conn vs round robin vs random.
func BenchmarkAblationDispatch(b *testing.B) {
	policies := []cluster.DispatchPolicy{
		cluster.CentralQueue, cluster.LeastConn, cluster.PowerOfTwo,
		cluster.RoundRobin, cluster.RandomSplit,
	}
	for _, pol := range policies {
		b.Run(string(pol), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				tr := ablationTrace(17)
				res := cluster.RunCloud(tr, cluster.CloudConfig{
					Servers: 5, Path: netem.Constant("zero", 0),
					Policy: pol, Warmup: 20, Seed: 18,
				})
				mean = res.MeanLatency()
			}
			b.ReportMetric(mean*1000, "mean-ms")
		})
	}
}

// BenchmarkAblationGeoLB measures §5.1 geographic load balancing under
// skew: plain edge vs jockeying edge vs cloud.
func BenchmarkAblationGeoLB(b *testing.B) {
	mk := func(jockey int) float64 {
		procs := make([]workload.ArrivalProcess, 5)
		rates := []float64{14, 8, 6, 3, 3}
		for i, r := range rates {
			procs[i] = workload.NewPoisson(r)
		}
		tr := cluster.Generate(cluster.GenSpec{
			Sites: 5, Duration: benchDuration, Seed: 19, Arrivals: procs,
		})
		sc, _ := netem.ScenarioByName("typical-25ms")
		res := cluster.RunEdge(tr, cluster.EdgeConfig{
			Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 20, Seed: 20,
			JockeyThreshold: jockey, DetourRTT: 0.005,
		})
		return res.MeanLatency()
	}
	b.Run("no-jockeying", func(b *testing.B) {
		var m float64
		for i := 0; i < b.N; i++ {
			m = mk(0)
		}
		b.ReportMetric(m*1000, "mean-ms")
	})
	b.Run("jockey-3", func(b *testing.B) {
		var m float64
		for i := 0; i < b.N; i++ {
			m = mk(3)
		}
		b.ReportMetric(m*1000, "mean-ms")
	})
}

// BenchmarkAblationServiceCoV sweeps service-time variability: Corollary
// 3.2.1 predicts burstier service lowers the inversion threshold.
func BenchmarkAblationServiceCoV(b *testing.B) {
	for _, scv := range []float64{0.0, 0.5, 1.0, 2.0} {
		b.Run(scvName(scv), func(b *testing.B) {
			var cross float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultSweepConfig()
				cfg.Duration = benchDuration
				cfg.Model = app.NewInferenceModelWith(1.0/13, scv)
				res := experiments.RunSweep(cfg)
				if r, _, ok := res.Crossover(experiments.Mean); ok {
					cross = r
				} else {
					cross = 13
				}
			}
			b.ReportMetric(cross, "crossover-req/s")
		})
	}
}

func scvName(scv float64) string {
	switch scv {
	case 0:
		return "scv-0.0"
	case 0.5:
		return "scv-0.5"
	case 1:
		return "scv-1.0"
	default:
		return "scv-2.0"
	}
}

// BenchmarkAblationSkewProvisioning compares fair-share vs load-matched
// per-site capacity under skew (Lemma 3.3's takeaway).
func BenchmarkAblationSkewProvisioning(b *testing.B) {
	run := func(perSite []int) float64 {
		procs := make([]workload.ArrivalProcess, 5)
		for i, r := range []float64{20, 10, 6, 6, 6} {
			procs[i] = workload.NewPoisson(r)
		}
		tr := cluster.Generate(cluster.GenSpec{
			Sites: 5, Duration: benchDuration, Seed: 23, Arrivals: procs,
		})
		res := cluster.RunEdge(tr, cluster.EdgeConfig{
			Sites: 5, Path: netem.Constant("zero", 0), Warmup: 20, Seed: 24,
			PerSiteServers: perSite,
		})
		return res.MeanLatency()
	}
	b.Run("fair-share-2-each", func(b *testing.B) {
		var m float64
		for i := 0; i < b.N; i++ {
			m = run([]int{2, 2, 2, 2, 2})
		}
		b.ReportMetric(m*1000, "mean-ms")
	})
	b.Run("load-matched", func(b *testing.B) {
		var m float64
		for i := 0; i < b.N; i++ {
			m = run([]int{3, 2, 2, 2, 1})
		}
		b.ReportMetric(m*1000, "mean-ms")
	})
}

// BenchmarkReplayStreaming1M measures the streaming replay core on a
// million-request trace in bounded-summary mode: the event calendar
// holds O(#stations) events, request objects and event nodes recycle
// through free lists, and latency collectors keep constant state. The
// pre-refactor materialized runner allocated ~6 objects per request
// (request + Done closure + arrival closure + two event nodes + service
// closure; measured 1,201,755 allocs for a 200k-request edge replay);
// the streaming core must stay at least 10x below that per request.
// Run with -benchmem (the CI short-bench step does) to see allocs/op.
func BenchmarkReplayStreaming1M(b *testing.B) {
	tr := cluster.Generate(cluster.GenSpec{
		Sites: 5, Duration: 10000, PerSiteRate: 20, Seed: 61,
	})
	if tr.Len() < 900000 {
		b.Fatalf("trace has %d requests, want ~1M", tr.Len())
	}
	sc, _ := netem.ScenarioByName("typical-25ms")
	b.Run("edge", func(b *testing.B) {
		b.ReportAllocs()
		var mean float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunEdge(tr, cluster.EdgeConfig{
				Sites: 5, ServersPerSite: 2, Path: sc.Edge,
				Warmup: 100, Seed: 62, Summary: stats.Bounded,
			})
			mean = res.MeanLatency()
		}
		b.ReportMetric(mean*1000, "mean-ms")
		b.ReportMetric(float64(tr.Len()), "requests")
	})
	b.Run("cloud", func(b *testing.B) {
		b.ReportAllocs()
		var mean float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunCloud(tr, cluster.CloudConfig{
				Servers: 10, Path: sc.Cloud,
				Warmup: 100, Seed: 63, Summary: stats.Bounded,
			})
			mean = res.MeanLatency()
		}
		b.ReportMetric(mean*1000, "mean-ms")
		b.ReportMetric(float64(tr.Len()), "requests")
	})
}

// BenchmarkStream100M replays a 10⁸-request generated workload through
// the two-tier edge+overflow topology on a streaming generator source —
// nothing trace-sized is ever materialized, summaries stay bounded, so
// the run's resident memory is independent of the request count (the
// ISSUE 5 acceptance scale). In short mode (the CI short-bench step
// passes -short) the same pipeline runs at 10⁶ requests, keeping the
// allocs/op figure in every CI artifact: with O(1) streaming the
// allocation count barely moves with scale, so any per-request
// regression is glaring. Run with -benchmem.
func BenchmarkStream100M(b *testing.B) {
	duration := 1_000_000.0 // 5 sites × 20 req/s × 10⁶ s = 10⁸ requests
	if testing.Short() {
		duration = 10_000 // 10⁶ requests
	}
	spec := cluster.GenSpec{Sites: 5, Duration: duration, PerSiteRate: 20, Seed: 71}
	sc, _ := netem.ScenarioByName("typical-25ms")
	topo := cluster.OverflowTopology(cluster.OverflowConfig{
		Sites: 5, ServersPerSite: 2,
		EdgePath: sc.Edge, CloudPath: sc.Cloud,
		CloudServers: 10, OverflowThreshold: 4,
	})
	b.ReportAllocs()
	var offered uint64
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := cluster.Run(cluster.Stream(spec), topo, cluster.Options{
			Warmup: 100, Seed: 72, Summary: stats.Bounded, NoPerSiteLatency: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		offered = res.Offered
		mean = res.EndToEnd.Mean()
	}
	b.ReportMetric(float64(offered), "requests")
	b.ReportMetric(mean*1000, "mean-ms")
}

// BenchmarkShardedReplay1M measures the sharded topology replay on a
// ~10⁶-request three-tier hierarchy at shard counts 1/2/4/8, next to
// the single-engine cluster.Run on the identical workload. benchjson
// turns the shards-N sub-bench timings into BENCH_PR7.json's
// shard-scaling curve; sharded results are bit-identical across counts
// (the shard-determinism suite asserts it), so the curve measures
// wall-clock alone. Speedup beyond shards-1 needs real cores: on a
// single-CPU runner the goroutines serialize and the curve is flat. In
// short mode (CI's short-bench step) the same pipeline replays 10⁵
// requests. Run with -benchmem.
func BenchmarkShardedReplay1M(b *testing.B) {
	const sites = 8
	duration := 6250.0 // 8 sites × 20 req/s × 6250 s = 10⁶ requests
	if testing.Short() {
		duration = 625
	}
	spec := cluster.GenSpec{Sites: sites, Duration: duration, PerSiteRate: 20, Seed: 81}
	regional := netem.Jittered("regional-13ms", 0.013, 0.002)
	cloud := netem.CloudTypical
	topo := cluster.Topology{
		Name: "bench-three-tier",
		Tiers: []cluster.Tier{
			{Name: "edge", Sites: sites, ServersPerSite: 2, Path: netem.EdgePath},
			{Name: "regional", Sites: 1, ServersPerSite: 6, Path: regional,
				Dispatch: cluster.CentralQueueDispatch},
			{Name: "cloud", Sites: 1, ServersPerSite: 8, Path: cloud,
				Dispatch: cluster.CentralQueueDispatch},
		},
		Spills: []cluster.SpillEdge{
			{From: "edge", To: "regional", Threshold: 3, DetourPath: &regional},
			{From: "regional", To: "cloud", Threshold: 8, DetourPath: &cloud},
		},
	}
	opts := cluster.Options{Warmup: 100, Seed: 82, Summary: stats.Bounded, NoPerSiteLatency: true}
	b.Run("single-engine", func(b *testing.B) {
		b.ReportAllocs()
		var offered uint64
		for i := 0; i < b.N; i++ {
			res, err := cluster.Run(cluster.Stream(spec), topo, opts)
			if err != nil {
				b.Fatal(err)
			}
			offered = res.Offered
		}
		b.ReportMetric(float64(offered), "requests")
	})
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var offered uint64
			for i := 0; i < b.N; i++ {
				res, err := cluster.RunSharded(cluster.GenShards(spec), topo, opts, n)
				if err != nil {
					b.Fatal(err)
				}
				offered = res.Offered
			}
			b.ReportMetric(float64(offered), "requests")
		})
	}
	// The pipelined backend on the identical workload: benchjson folds
	// these into a second shard-scaling curve (family ".../pipelined"),
	// so the artifact carries barrier and pipelined curves side by side.
	popts := opts
	popts.Pipeline = true
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("pipelined/shards-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var offered uint64
			for i := 0; i < b.N; i++ {
				res, err := cluster.RunSharded(cluster.GenShards(spec), topo, popts, n)
				if err != nil {
					b.Fatal(err)
				}
				offered = res.Offered
			}
			b.ReportMetric(float64(offered), "requests")
		})
	}
}

// peakRSSMB reads the process peak resident set (VmHWM) in MB.
func peakRSSMB(b *testing.B) float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0 // not Linux: report 0 rather than fail the bench
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// resetPeakRSS clears the VmHWM watermark so each sub-benchmark
// measures its own peak, not its predecessors'. Best effort: kernels
// without clear_refs keep the cumulative watermark.
func resetPeakRSS() {
	os.WriteFile("/proc/self/clear_refs", []byte("5"), 0o200)
}

// BenchmarkShowcaseMillionSites replays 10⁸ requests through a
// million-station edge backed by a shared cloud pool — the pipelined
// tentpole's target scale — on the barrier and pipelined sharded
// backends (bit-identical results; the equivalence suite asserts it at
// small scale). Reported metrics: peak RSS (the pipelined run's
// boundary memory is bounded by ring capacity where the barrier run
// holds every boundary record of the slowest shard's span) and, for
// the pipelined run, the peak resident boundary backlog. Speedup vs
// barrier needs real cores (CI's multi-core bench job); on one CPU the
// phases serialize and only the memory bound shows. In short mode the
// same pipeline runs 10⁶ requests over 10⁴ sites. Run with -benchmem.
func BenchmarkShowcaseMillionSites(b *testing.B) {
	sites := 1_000_000
	if testing.Short() {
		sites = 10_000
	}
	// 100 requests per site: sites × 8 req/s × 12.5 s.
	spec := cluster.GenSpec{Sites: sites, Duration: 12.5, PerSiteRate: 8, Seed: 97}
	cloudPath := netem.CloudTypical
	topo := cluster.Topology{
		Name: "showcase-million",
		Tiers: []cluster.Tier{
			{Name: "edge", Sites: sites, ServersPerSite: 1, Path: netem.EdgePath},
			{Name: "cloud", Sites: 1, ServersPerSite: 64, Path: cloudPath,
				Dispatch: cluster.CentralQueueDispatch},
		},
		Spills: []cluster.SpillEdge{
			{From: "edge", To: "cloud", Threshold: 3, DetourPath: &cloudPath},
		},
	}
	const shards = 4
	opts := cluster.Options{
		Warmup: 2, Seed: 98, Summary: stats.Bounded, NoPerSiteLatency: true,
	}
	b.Run("barrier", func(b *testing.B) {
		b.ReportAllocs()
		resetPeakRSS()
		var offered uint64
		for i := 0; i < b.N; i++ {
			res, err := cluster.RunSharded(cluster.GenShards(spec), topo, opts, shards)
			if err != nil {
				b.Fatal(err)
			}
			offered = res.Offered
		}
		b.ReportMetric(float64(offered), "requests")
		b.ReportMetric(peakRSSMB(b), "peak-RSS-MB")
	})
	b.Run("pipelined", func(b *testing.B) {
		b.ReportAllocs()
		resetPeakRSS()
		popts := opts
		popts.Pipeline = true
		var backlog int
		popts.BacklogProbe = func(p int) { backlog = p }
		var offered uint64
		for i := 0; i < b.N; i++ {
			res, err := cluster.RunSharded(cluster.GenShards(spec), topo, popts, shards)
			if err != nil {
				b.Fatal(err)
			}
			offered = res.Offered
		}
		b.ReportMetric(float64(offered), "requests")
		b.ReportMetric(peakRSSMB(b), "peak-RSS-MB")
		b.ReportMetric(float64(backlog), "peak-backlog-records")
	})
}

// BenchmarkEngineBackends pits the calendar-queue event calendar
// against the retired binary heap on the same replay, the PR 6 tentpole
// comparison: allocs/op must not regress and the calendar's O(1)
// schedule/pop should at least match the heap's O(log n).
func BenchmarkEngineBackends(b *testing.B) {
	spec := cluster.GenSpec{Sites: 5, Duration: 2000, PerSiteRate: 20, Seed: 91}
	sc, _ := netem.ScenarioByName("typical-25ms")
	topo := cluster.OverflowTopology(cluster.OverflowConfig{
		Sites: 5, ServersPerSite: 2,
		EdgePath: sc.Edge, CloudPath: sc.Cloud,
		CloudServers: 10, OverflowThreshold: 4,
	})
	for _, bk := range []struct {
		name string
		b    sim.Backend
	}{
		{"calendar-queue", sim.CalendarQueue},
		{"binary-heap", sim.BinaryHeap},
	} {
		b.Run(bk.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := cluster.Run(cluster.Stream(spec), topo, cluster.Options{
					Warmup: 100, Seed: 92, Summary: stats.Bounded,
					NoPerSiteLatency: true, Backend: bk.b,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Microbenchmarks of the hot kernels ---

// BenchmarkSimEngineEventThroughput measures raw event processing.
func BenchmarkSimEngineEventThroughput(b *testing.B) {
	eng := sim.NewEngine(1)
	var next func(e *sim.Engine)
	count := 0
	next = func(e *sim.Engine) {
		count++
		if count < b.N {
			e.After(0.001, next)
		}
	}
	b.ResetTimer()
	eng.After(0.001, next)
	eng.Run()
}

// BenchmarkStationMM1 measures the queueing station's per-request cost.
func BenchmarkStationMM1(b *testing.B) {
	eng := sim.NewEngine(1)
	st := queue.NewStation(eng, "bench", 1, queue.FCFS)
	svc := dist.NewExponentialMean(1.0 / 13)
	arr := dist.NewExponentialMean(1.0 / 9)
	rng := eng.NewStream()
	t := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += arr.Sample(rng)
		req := &queue.Request{ID: uint64(i), ServiceTime: svc.Sample(rng)}
		eng.At(t, func(e *sim.Engine) { st.Arrive(req) })
	}
	eng.Run()
	st.Finish()
}

// BenchmarkStatsSampleQuantile measures the exact-quantile kernel.
func BenchmarkStatsSampleQuantile(b *testing.B) {
	s := stats.NewSample(100000)
	rng := sim.NewEngine(1).RNG()
	for i := 0; i < 100000; i++ {
		s.Add(rng.ExpFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.ExpFloat64())
		_ = s.P95()
	}
}

// BenchmarkStatsP2Quantile measures the streaming estimator.
func BenchmarkStatsP2Quantile(b *testing.B) {
	est := stats.NewP2Quantile(0.95)
	rng := sim.NewEngine(1).RNG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Add(rng.ExpFloat64())
	}
	_ = est.Value()
}

// BenchmarkWorkloadGenerate measures trace synthesis.
func BenchmarkWorkloadGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := cluster.Generate(cluster.GenSpec{
			Sites: 5, Duration: 100, PerSiteRate: 10, Seed: int64(i),
		})
		if tr.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTheoryCutoffBisect measures the numeric cutoff solver.
func BenchmarkTheoryCutoffBisect(b *testing.B) {
	d := theory.Deployment{K: 5, ServersPerSite: 1, Mu: 13, EdgeRTT: 0.001, CloudRTT: 0.025}
	for i := 0; i < b.N; i++ {
		_ = d.CutoffUtilizationExactMM()
	}
}

// BenchmarkAblationOverflow measures the hierarchical edge→cloud
// overflow mitigation against the plain edge under a saturated hot site.
func BenchmarkAblationOverflow(b *testing.B) {
	mkTrace := func() *cluster.WorkloadTrace {
		procs := make([]workload.ArrivalProcess, 5)
		for i, r := range []float64{18, 5, 5, 3, 3} {
			procs[i] = workload.NewPoisson(r)
		}
		return cluster.Generate(cluster.GenSpec{
			Sites: 5, Duration: benchDuration, Seed: 51, Arrivals: procs,
		})
	}
	sc, _ := netem.ScenarioByName("typical-25ms")
	b.Run("plain-edge", func(b *testing.B) {
		var m float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunEdge(mkTrace(), cluster.EdgeConfig{
				Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 20, Seed: 52,
			})
			m = res.MeanLatency()
		}
		b.ReportMetric(m*1000, "mean-ms")
	})
	b.Run("overflow-to-cloud", func(b *testing.B) {
		var m float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunEdgeWithOverflow(mkTrace(), cluster.OverflowConfig{
				Sites: 5, ServersPerSite: 1,
				EdgePath: sc.Edge, CloudPath: sc.Cloud,
				CloudServers: 5, OverflowThreshold: 4,
				Warmup: 20, Seed: 52,
			})
			m = res.MeanLatency()
		}
		b.ReportMetric(m*1000, "mean-ms")
	})
}

// BenchmarkAblationAutoscale measures the reactive controller against a
// static edge under the same skewed workload.
func BenchmarkAblationAutoscale(b *testing.B) {
	mkTrace := func() *cluster.WorkloadTrace {
		procs := make([]workload.ArrivalProcess, 5)
		for i, r := range []float64{16, 8, 6, 3, 3} {
			procs[i] = workload.NewPoisson(r)
		}
		return cluster.Generate(cluster.GenSpec{
			Sites: 5, Duration: benchDuration, Seed: 53, Arrivals: procs,
		})
	}
	sc, _ := netem.ScenarioByName("typical-25ms")
	b.Run("static", func(b *testing.B) {
		var m float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunEdge(mkTrace(), cluster.EdgeConfig{
				Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 20, Seed: 54,
			})
			m = res.MeanLatency()
		}
		b.ReportMetric(m*1000, "mean-ms")
	})
	b.Run("autoscaled", func(b *testing.B) {
		var m float64
		var peak int
		for i := 0; i < b.N; i++ {
			res := cluster.RunEdgeAutoscaled(mkTrace(), cluster.EdgeConfig{
				Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 20, Seed: 54,
			}, autoscale.Config{
				Interval: 2, Min: 1, Max: 4,
				UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 6,
			})
			m = res.MeanLatency()
			peak = res.PeakServers
		}
		b.ReportMetric(m*1000, "mean-ms")
		b.ReportMetric(float64(peak), "peak-servers")
	})
}

// BenchmarkTailCutoffAnalytic computes the analytic p95 cutoff
// utilizations (the extension of the paper's mean-only analysis) across
// the four cloud scenarios — the closed-form counterpart of Figure 7's
// p95 bars.
func BenchmarkTailCutoffAnalytic(b *testing.B) {
	var nearest, farthest float64
	for i := 0; i < b.N; i++ {
		for _, sc := range netem.PaperScenarios() {
			d := theory.Deployment{
				K: 5, ServersPerSite: 1, Mu: 13,
				EdgeRTT: sc.Edge.MeanRTT(), CloudRTT: sc.Cloud.MeanRTT(),
			}
			cut := d.TailCutoffUtilization(0.95)
			if sc.Name == "nearby-13ms" {
				nearest = cut
			}
			if sc.Name == "transcontinental-80ms" {
				farthest = cut
			}
		}
	}
	b.ReportMetric(nearest*100, "p95-cutoff%%-13ms")
	b.ReportMetric(farthest*100, "p95-cutoff%%-80ms")
}

// BenchmarkBoundedQueueLoss measures the M/M/c/K loss model against the
// simulated bounded-queue drop rate.
func BenchmarkBoundedQueueLoss(b *testing.B) {
	var lossTheory float64
	for i := 0; i < b.N; i++ {
		lossTheory = theory.MMcKLossProbability(1, 11, 1.1)
	}
	b.ReportMetric(lossTheory*100, "loss%%-rho1.1-K11")
}

// broadcastBenchSpec builds a generation-bound workload: an NHPP
// envelope whose peak sits ~1000x above its mean rate makes the
// generator's thinning loop draw ~1000 candidates per accepted
// arrival (thinning proposes at the envelope maximum), so generation —
// not replay — dominates each pass. That is the regime broadcast
// replay targets: N variant engines re-deriving this trace pay the
// thinning cost N times, one broadcast pass pays it once.
func broadcastBenchSpec(duration float64) cluster.GenSpec {
	const sites = 4
	envelope := make([]float64, 1000)
	for i := range envelope {
		envelope[i] = 0.1
	}
	envelope[999] = 4000 // one 0.3-second burst per 300-second cycle
	procs := make([]workload.ArrivalProcess, sites)
	for i := range procs {
		procs[i] = workload.NewNHPP(envelope, 0.3, true)
	}
	return cluster.GenSpec{Sites: sites, Duration: duration, Seed: 91, Arrivals: procs}
}

// broadcastBenchVariants are deliberately cheap to replay (ample
// servers, bounded summaries, no per-site digests), keeping the
// benchmark generation-bound; the four shapes differ only in capacity.
func broadcastBenchVariants() []cluster.Variant {
	variants := make([]cluster.Variant, 4)
	for i := range variants {
		topo := cluster.EdgeTopology(cluster.EdgeConfig{
			Sites: 4, ServersPerSite: 6 + 2*i, Path: netem.EdgePath,
		})
		topo.Name = fmt.Sprintf("fanout-%d", 6+2*i)
		variants[i] = cluster.Variant{
			Label:    topo.Name,
			Topology: topo,
			Opts: cluster.Options{
				Warmup: 50, Seed: 92,
				Summary: stats.Bounded, NoPerSiteLatency: true,
			},
		}
	}
	return variants
}

// BenchmarkBroadcastFanout measures the tentpole claim: comparing 4
// deployment variants over one generation-bound trace via per-row
// re-derivation (each variant re-runs the generator) versus one
// broadcast pass fanning out to all 4 engines. The two paths produce
// bit-identical rows (the broadcast equivalence suite asserts it), so
// the ratio is pure generation savings: per-row costs 4·(G+S),
// broadcast G+4·S, with generation G ≫ replay S by construction.
// benchjson gates the broadcast/per-row ratio via BENCH_PR8.json. In
// short mode (CI's short-bench step) the trace shrinks ~10x.
func BenchmarkBroadcastFanout(b *testing.B) {
	duration := 3000.0
	if testing.Short() {
		duration = 300
	}
	spec := broadcastBenchSpec(duration)
	variants := broadcastBenchVariants()
	b.Run("per-row", func(b *testing.B) {
		b.ReportAllocs()
		var offered uint64
		for i := 0; i < b.N; i++ {
			offered = 0
			for _, v := range variants {
				res, err := cluster.Run(cluster.Stream(spec), v.Topology, v.Opts)
				if err != nil {
					b.Fatal(err)
				}
				offered += res.Offered
			}
		}
		b.ReportMetric(float64(offered), "requests")
	})
	b.Run("broadcast", func(b *testing.B) {
		b.ReportAllocs()
		var offered uint64
		for i := 0; i < b.N; i++ {
			offered = 0
			runs, err := cluster.RunBroadcast(cluster.Stream(spec), variants, 0)
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range runs {
				offered += res.Offered
			}
		}
		b.ReportMetric(float64(offered), "requests")
	})
}

// drainCount pulls src dry, returning the record count.
func drainCount(src cluster.Source) uint64 {
	var n uint64
	for {
		if _, ok := src.Next(); !ok {
			return n
		}
		n++
	}
}

// BenchmarkParallelGen measures the PR 9 generation front-end on the
// same generation-bound NHPP workload BenchmarkBroadcastFanout uses:
// gen-serial drains cluster.Stream, gen-parallel the worker fan-out
// through ParallelStream (bit-identical records; the equivalence suite
// asserts it), and gen-piecewise the serial stream with the
// PiecewiseEnvelope flag — exact per-segment simulation instead of
// thinning against the 4000x envelope peak, the algorithmic half of
// the speedup. benchjson folds the serial/parallel pair into
// BENCH_PR9.json's gen_speedup; real speedup needs real cores — on a
// single-CPU runner the workers serialize and the pair measures merge
// overhead (parity acceptable). In short mode the trace shrinks ~10x.
func BenchmarkParallelGen(b *testing.B) {
	duration := 3000.0
	if testing.Short() {
		duration = 300
	}
	spec := broadcastBenchSpec(duration)
	b.Run("gen-serial", func(b *testing.B) {
		b.ReportAllocs()
		var n uint64
		for i := 0; i < b.N; i++ {
			n = drainCount(cluster.Stream(spec))
		}
		b.ReportMetric(float64(n), "requests")
	})
	b.Run("gen-parallel", func(b *testing.B) {
		b.ReportAllocs()
		var n uint64
		for i := 0; i < b.N; i++ {
			n = drainCount(cluster.ParallelStream(spec, 4))
		}
		b.ReportMetric(float64(n), "requests")
	})
	b.Run("gen-piecewise", func(b *testing.B) {
		b.ReportAllocs()
		pspec := spec
		pspec.PiecewiseEnvelope = true
		var n uint64
		for i := 0; i < b.N; i++ {
			n = drainCount(cluster.Stream(pspec))
		}
		b.ReportMetric(float64(n), "requests")
	})
}

// BenchmarkTraceDecode measures replay-input decoding on a pre-encoded
// ~200k-record trace: the request-CSV text decoder against the .etb
// binary decoder over the identical records. The binary path's
// acceptance bar is ≥5x less time and strictly fewer allocations per
// drain (the allocs/op regression tests pin both decoders at a small
// constant; -benchmem shows it here). Bytes-on-disk for each format
// ride along as metrics. In short mode the trace shrinks ~10x.
func BenchmarkTraceDecode(b *testing.B) {
	duration := 1250.0 // 8 sites x 20 req/s x 1250 s = 200k records
	if testing.Short() {
		duration = 125
	}
	spec := cluster.GenSpec{Sites: 8, Duration: duration, PerSiteRate: 20, Seed: 93}
	var csvBuf, etbBuf bytes.Buffer
	if _, err := trace.WriteRequestsCSV(&csvBuf, cluster.Stream(spec)); err != nil {
		b.Fatal(err)
	}
	if _, err := trace.WriteBinary(&etbBuf, cluster.Stream(spec)); err != nil {
		b.Fatal(err)
	}
	csvData, etbData := csvBuf.Bytes(), etbBuf.Bytes()
	b.Run("csv", func(b *testing.B) {
		b.ReportAllocs()
		var n uint64
		for i := 0; i < b.N; i++ {
			src := trace.StreamRequestsCSV(bytes.NewReader(csvData))
			n = drainCount(src)
			if err := src.Err(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n), "requests")
		b.ReportMetric(float64(len(csvData)), "file-bytes")
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		var n uint64
		for i := 0; i < b.N; i++ {
			src := trace.StreamBinary(bytes.NewReader(etbData))
			n = drainCount(src)
			if err := src.Err(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n), "requests")
		b.ReportMetric(float64(len(etbData)), "file-bytes")
	})
}

// BenchmarkAdmissionOverhead prices the ISSUE 10 admission gate on the
// streaming replay core: the same 10⁶-request replay with no
// admission, with a never-rejecting entry token bucket (pure
// policy-check overhead — the event sequence is bit-identical, as the
// admission equivalence suite asserts), and with an active bucket
// shedding ~a third of traffic (rejections shortcut the service path,
// bounding the other side). benchjson gates all three against the
// committed BENCH_PR10.json. In short mode the replay scales to 10⁵
// requests.
func BenchmarkAdmissionOverhead(b *testing.B) {
	const sites = 8
	duration := 6250.0 // 8 sites × 20 req/s × 6250 s = 10⁶ requests
	if testing.Short() {
		duration = 625
	}
	spec := cluster.GenSpec{Sites: sites, Duration: duration, PerSiteRate: 20, Seed: 81}
	cloud := netem.CloudTypical
	topology := func(a *admit.Spec) cluster.Topology {
		return cluster.Topology{
			Name: "bench-admit",
			Tiers: []cluster.Tier{
				{Name: "edge", Sites: sites, ServersPerSite: 2, Path: netem.EdgePath,
					Admission: a},
				{Name: "cloud", Sites: 1, ServersPerSite: 8, Path: cloud,
					Dispatch: cluster.CentralQueueDispatch},
			},
			Spills: []cluster.SpillEdge{
				{From: "edge", To: "cloud", Threshold: 3, DetourPath: &cloud},
			},
		}
	}
	opts := cluster.Options{Warmup: 100, Seed: 82, Summary: stats.Bounded, NoPerSiteLatency: true}
	for _, tc := range []struct {
		name string
		spec *admit.Spec
	}{
		{"admit-off", nil},
		{"admit-noop", &admit.Spec{Policy: admit.TokenBucket, Rate: 1e9}},
		{"admit-active", &admit.Spec{Policy: admit.TokenBucket, Rate: 13}},
	} {
		topo := topology(tc.spec)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var offered, rejected uint64
			for i := 0; i < b.N; i++ {
				res, err := cluster.Run(cluster.Stream(spec), topo, opts)
				if err != nil {
					b.Fatal(err)
				}
				offered, rejected = res.Offered, res.Rejected
			}
			b.ReportMetric(float64(offered), "requests")
			b.ReportMetric(float64(rejected), "rejected")
		})
	}
}
